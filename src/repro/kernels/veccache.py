"""Structure-of-arrays cache models backing the vectorized kernels.

Each ``Vec*Cache`` is a :class:`~repro.caches.setassoc.SetAssocCache`
subclass with three storage changes:

* tags keep the per-set Python lists (scalar ``in``/``index`` scans stay
  C-speed) **plus** a 2-D int64 numpy mirror (``-1`` marks an invalid way)
  that is synced at every tag write — batch probes and fills are then
  single gather/scatter operations,
* dirty bits and valid-way counts move into int64 numpy arrays (the
  inherited scalar code mutates them element-wise, unchanged),
* replacement metadata is numpy-only, with the scalar ``_touch``/``_victim``
  hooks reimplemented on it and new ``touch_batch``/``victim_batch`` hooks
  for the kernels.

Equivalence notes (load-bearing — the property suite pins these):

* **LRU** replaces the recency list with a last-touch stamp per way
  (``argmin`` = least recently touched).  Stamps are unique within a set:
  every valid way got its stamp from a touch, the stamp counter is strictly
  monotone, and a set is touched at most once per kernel round.  Eviction
  only happens in a full set, where every way has been touched, so initial
  stamps never decide a victim.
* **NRU** keeps the accessed-bit mask; the batch victim converts the lowest
  clear bit to an index via ``frexp`` (exact for way counts <= 52).
* **PLRU** reuses the scalar transition tables as numpy arrays.

``make_vec_cache`` returns ``None`` for configurations the kernels do not
cover (random replacement, NRU outside 2..52 ways); the hierarchy then
falls back to the scalar classes for that cache.

:meth:`VecSetAssocCache.snapshot`/:meth:`VecSetAssocCache.restore` save and
roll back the complete cache state (tags, dirty/valid, policy metadata,
counters).  The pipelined full-path kernel snapshots the private levels at
the start of every chunk so it can rewind them in the rare case an
inclusive-L3 back-invalidation lands on a line the optimistic pipeline has
already simulated past (see :mod:`repro.kernels.pipekernel`).  Snapshots
reuse preallocated buffers — a snapshot is a handful of ``memcpy``\\ s."""

from __future__ import annotations

import numpy as np

from ..caches.setassoc import (
    MISS_CLEAN,
    MISS_DIRTY,
    MISS_FREE,
    SetAssocCache,
    _build_plru_tables,
)
from ..config import CacheConfig
from ..errors import SimulationError

#: ways supported by the NRU/PLRU vector victim math (bitmask in int64,
#: frexp-exact lowest-set-bit extraction)
_MAX_MASK_WAYS = 52


class VecSetAssocCache(SetAssocCache):
    """Shared SoA storage; policy subclasses add metadata + batch hooks."""

    def __init__(self, config: CacheConfig):
        super().__init__(config)
        # numpy replaces the per-set int lists; the inherited scalar methods
        # mutate these element-wise, which numpy setitem supports verbatim
        self._dirty = np.zeros(self.num_sets, dtype=np.int64)
        self._nvalid = np.zeros(self.num_sets, dtype=np.int64)
        #: 2-D tag mirror; -1 marks an invalid way.  Kept in lockstep with
        #: the per-set lists at every tag write (fill/invalidate/flush).
        self._tags_np = np.full((self.num_sets, self.ways), -1, dtype=np.int64)

    # -- scalar protocol (mirror-synced overrides) ---------------------------

    def _fill_slow(
        self, set_idx: int, tag: int, is_write: bool, tags: list[int | None]
    ) -> int:
        code = MISS_FREE
        if self._nvalid[set_idx] < self.ways:
            way = tags.index(None)
            self._nvalid[set_idx] += 1
        else:
            way = self._victim(set_idx)
            self.victim_tag = tags[way]
            self.evict_count += 1
            if self._dirty[set_idx] & (1 << way):
                self.wb_count += 1
                code = MISS_DIRTY
            else:
                code = MISS_CLEAN
        tags[way] = tag
        self._tags_np[set_idx, way] = tag
        if is_write:
            self._dirty[set_idx] |= 1 << way
        else:
            self._dirty[set_idx] &= ~(1 << way)
        self.fill_count += 1
        self._touch(set_idx, way)
        return code

    def invalidate(self, set_idx: int, tag: int) -> tuple[bool, bool]:
        tags = self._tags[set_idx]
        if tag not in tags:
            return False, False
        way = tags.index(tag)
        was_dirty = bool(self._dirty[set_idx] & (1 << way))
        tags[way] = None
        self._tags_np[set_idx, way] = -1
        self._dirty[set_idx] &= ~(1 << way)
        self._nvalid[set_idx] -= 1
        self._reset_meta(set_idx, way)
        self.inval_count += 1
        return True, was_dirty

    def flush(self) -> None:
        for s in range(self.num_sets):
            self._tags[s] = [None] * self.ways
        self._dirty.fill(0)
        self._nvalid.fill(0)
        self._tags_np.fill(-1)
        self._init_meta()

    # -- chunk snapshot / rollback -------------------------------------------

    def _meta_arrays(self) -> tuple[np.ndarray, ...]:
        """Policy-metadata arrays included in snapshots (subclass hook)."""
        return ()

    def _extra_state(self) -> tuple:
        """Non-array policy state included in snapshots (subclass hook)."""
        return ()

    def _set_extra_state(self, state: tuple) -> None:
        """Restore :meth:`_extra_state` (subclass hook)."""

    def snapshot(self) -> None:
        """Save the complete cache state into preallocated buffers.

        One snapshot slot: a second :meth:`snapshot` overwrites the first.
        Cost is a few array copies; the scalar tag lists are *not* copied —
        :meth:`restore` rebuilds them from the tag mirror, so the (rare)
        rollback pays that price instead of the (per-chunk) snapshot.
        """
        arrays = (self._tags_np, self._dirty, self._nvalid, *self._meta_arrays())
        buf = getattr(self, "_snap_arrays", None)
        if buf is None:
            self._snap_arrays = tuple(a.copy() for a in arrays)
        else:
            for b, a in zip(buf, arrays):
                np.copyto(b, a)
        self._snap_state = (
            self.acc_count,
            self.hit_count,
            self.miss_count,
            self.evict_count,
            self.wb_count,
            self.fill_count,
            self.inval_count,
            self.victim_tag,
            self._extra_state(),
        )

    def restore(self) -> None:
        """Roll the cache back to the last :meth:`snapshot`."""
        arrays = (self._tags_np, self._dirty, self._nvalid, *self._meta_arrays())
        for a, b in zip(arrays, self._snap_arrays):
            np.copyto(a, b)
        (
            self.acc_count,
            self.hit_count,
            self.miss_count,
            self.evict_count,
            self.wb_count,
            self.fill_count,
            self.inval_count,
            self.victim_tag,
            extra,
        ) = self._snap_state
        self._set_extra_state(extra)
        tag_lists = self._tags
        for s, row in enumerate(self._tags_np.tolist()):
            tag_lists[s] = [t if t >= 0 else None for t in row]

    def resync_tag_lists(self) -> None:
        """Rebuild the scalar per-set tag lists from the numpy mirror.

        The C lowering (:mod:`repro.kernels.cext`) mutates only the mirror;
        callers that afterwards need the scalar ``in``/``index`` scans (or
        diagnostics like :meth:`VecLRUCache.recency_order`) either replay
        the recorded fill events or pay this O(sets·ways) rebuild.
        """
        tag_lists = self._tags
        for s, row in enumerate(self._tags_np.tolist()):
            tag_lists[s] = [t if t >= 0 else None for t in row]

    # -- batch protocol (one access per *distinct* set) ----------------------
    #
    # The kernels guarantee every batch holds at most one access per set
    # (round decomposition), so the scatters below never collide.

    def probe_batch(
        self, sets: np.ndarray, tags: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized presence probe: ``(hit_mask, way)`` per access.

        Does not update replacement state; ``way`` is meaningful only where
        ``hit_mask`` is true.  Unlike the batch mutators this is safe for
        duplicate sets (it is a pure read).
        """
        match = self._tags_np[sets] == tags[:, None]
        way = match.argmax(axis=1)
        # argmax of an all-False row is 0; one gather distinguishes it from a
        # genuine way-0 hit (cheaper than a second O(k·ways) any() pass)
        return match[np.arange(len(way)), way], way

    def touch_hits_batch(
        self, sets: np.ndarray, ways: np.ndarray, writes: np.ndarray | None
    ) -> None:
        """Apply the hit path (dirty bit + replacement touch) to a batch."""
        if writes is not None and writes.any():
            ws = sets[writes]
            self._dirty[ws] |= np.int64(1) << ways[writes]
        self.touch_batch(sets, ways)

    def fill_batch(
        self,
        sets: np.ndarray,
        tags: np.ndarray,
        writes: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fill a batch of missing lines; returns ``(codes, victim_tags)``.

        Mirrors :meth:`SetAssocCache._fill_slow` exactly: free ways are
        filled lowest-index-first, full sets evict the policy victim, dirty
        victims count a writeback.  ``victim_tags[i]`` is -1 where no
        eviction happened.  The caller accounts miss/hit counters; this
        method accounts evict/wb/fill like the scalar fill does.
        """
        k = len(sets)
        ways = np.empty(k, dtype=np.int64)
        codes = np.full(k, MISS_FREE, dtype=np.int64)
        vtags = np.full(k, -1, dtype=np.int64)
        has_free = self._nvalid[sets] < self.ways
        if has_free.any():
            fsets = sets[has_free]
            ways[has_free] = (self._tags_np[fsets] == -1).argmax(axis=1)
            self._nvalid[fsets] += 1
        evict = ~has_free
        if evict.any():
            esets = sets[evict]
            eways = self.victim_batch(esets)
            vdirty = (self._dirty[esets] >> eways) & 1
            vtags[evict] = self._tags_np[esets, eways]
            codes[evict] = np.where(vdirty == 1, MISS_DIRTY, MISS_CLEAN)
            ways[evict] = eways
            self.evict_count += int(evict.sum())
            self.wb_count += int(vdirty.sum())
        self._tags_np[sets, ways] = tags
        bit = np.int64(1) << ways
        if writes is None:
            self._dirty[sets] &= ~bit
        else:
            d = self._dirty[sets]
            self._dirty[sets] = np.where(writes, d | bit, d & ~bit)
        self.fill_count += k
        self.touch_batch(sets, ways)
        # sync the scalar tag lists — O(misses), not O(chunk)
        tag_lists = self._tags
        for s, w, t in zip(sets.tolist(), ways.tolist(), tags.tolist()):
            tag_lists[s][w] = t
        return codes, vtags

    # -- policy hooks (batch) -------------------------------------------------

    def touch_batch(self, sets: np.ndarray, ways: np.ndarray) -> None:
        raise NotImplementedError

    def victim_batch(self, sets: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def touch_repeat(self, set_idx: int, way: int, count: int) -> None:
        """State after ``count`` consecutive touches of one way.

        NRU and PLRU touches are idempotent after the first (a second touch
        of the already-touched way is a no-op), so one scalar touch suffices;
        LRU overrides this to advance its clock.  Backs the spinning-Pirate
        shortcut in the L3 kernel.
        """
        self._touch(set_idx, way)


class VecLRUCache(VecSetAssocCache):
    """True LRU as a last-touch stamp per way (``argmin`` = LRU)."""

    def __init__(self, config: CacheConfig):
        super().__init__(config)
        self._init_meta()

    def _init_meta(self) -> None:
        # distinct initial stamps keep argmin deterministic before the set
        # fills; they sit below every real stamp and never pick a victim
        # (eviction requires a full set, where every way has been touched)
        self._rank = np.tile(
            np.arange(self.ways, dtype=np.int64), (self.num_sets, 1)
        )
        self._clock = self.ways

    def _touch(self, set_idx: int, way: int) -> None:
        self._rank[set_idx, way] = self._clock
        self._clock += 1

    def _victim(self, set_idx: int) -> int:
        return int(self._rank[set_idx].argmin())

    def touch_batch(self, sets: np.ndarray, ways: np.ndarray) -> None:
        # one shared stamp per round: sets in a batch are distinct, so only
        # cross-round (monotone) order matters within any one set
        self._rank[sets, ways] = self._clock
        self._clock += 1

    def touch_last_batch(self, sets: np.ndarray, ways: np.ndarray, k: int) -> None:
        """Order-free touch for an all-hit chunk (the resident-set shortcut).

        The final LRU state after a hit-only access sequence depends only on
        each way's *last* touch position, so a single ``maximum.at`` scatter
        replaces the per-round loop.
        """
        stamps = self._clock + np.arange(k, dtype=np.int64)
        # duplicate (set, way) pairs resolve last-assignment-wins, and stamps
        # increase in call order, so this IS the per-way maximum — and every
        # new stamp beats any pre-call rank (the clock is monotone)
        self._rank[sets, ways] = stamps
        self._clock += k

    def victim_batch(self, sets: np.ndarray) -> np.ndarray:
        return self._rank[sets].argmin(axis=1)

    def _meta_arrays(self) -> tuple[np.ndarray, ...]:
        return (self._rank,)

    def _extra_state(self) -> tuple:
        return (self._clock,)

    def _set_extra_state(self, state: tuple) -> None:
        (self._clock,) = state

    def touch_repeat(self, set_idx: int, way: int, count: int) -> None:
        # scalar equivalent: count touches, each stamping the then-current
        # clock — the way ends at clock+count-1 and the clock at clock+count
        self._clock += count
        self._rank[set_idx, way] = self._clock - 1

    def recency_order(self, set_idx: int) -> list[int | None]:
        """Tags from LRU to MRU for one set (Fig. 3 stack view)."""
        tags = self._tags[set_idx]
        order = np.argsort(self._rank[set_idx], kind="stable")
        return [tags[int(w)] for w in order]


class VecNRUCache(VecSetAssocCache):
    """Nehalem accessed-bit policy on a numpy bitmask array."""

    def __init__(self, config: CacheConfig):
        if not 2 <= config.ways <= _MAX_MASK_WAYS:
            raise SimulationError(
                f"vectorized NRU supports 2..{_MAX_MASK_WAYS} ways, "
                f"got {config.ways}"
            )
        super().__init__(config)
        self._full_mask = (1 << self.ways) - 1
        self._init_meta()

    def _init_meta(self) -> None:
        self._acc = np.zeros(self.num_sets, dtype=np.int64)

    def _touch(self, set_idx: int, way: int) -> None:
        # int() first: the remaining ops then run on Python ints, not np.int64
        bits = int(self._acc[set_idx]) | (1 << way)
        if bits == self._full_mask:
            bits = 1 << way
        self._acc[set_idx] = bits

    def _victim(self, set_idx: int) -> int:
        inv = ~int(self._acc[set_idx]) & self._full_mask
        if inv:
            return (inv & -inv).bit_length() - 1
        raise SimulationError("NRU set with every accessed bit set")

    def _reset_meta(self, set_idx: int, way: int) -> None:
        self._acc[set_idx] &= ~(1 << way)

    def touch_batch(self, sets: np.ndarray, ways: np.ndarray) -> None:
        bits = self._acc[sets] | (np.int64(1) << ways)
        self._acc[sets] = np.where(
            bits == self._full_mask, np.int64(1) << ways, bits
        )

    def victim_batch(self, sets: np.ndarray) -> np.ndarray:
        inv = ~self._acc[sets] & self._full_mask
        low = inv & -inv
        # low is a power of two (the _touch invariant leaves a clear bit in
        # every full set); frexp exponent-1 is its exact index
        return (np.frexp(low.astype(np.float64))[1] - 1).astype(np.int64)

    def accessed_bits(self, set_idx: int) -> int:
        """Raw accessed-bit mask of a set (diagnostics/tests)."""
        return int(self._acc[set_idx])

    def _meta_arrays(self) -> tuple[np.ndarray, ...]:
        return (self._acc,)


class VecPLRUCache(VecSetAssocCache):
    """Tree pseudo-LRU with the transition tables as numpy arrays."""

    #: per way count: (touch ndarray, victim ndarray, touch list, victim list)
    #: — the ndarrays feed the batch hooks, the lists the scalar hooks
    _np_tables: dict[int, tuple] = {}

    def __init__(self, config: CacheConfig):
        if config.ways & (config.ways - 1):
            raise SimulationError("tree-PLRU requires a power-of-two way count")
        super().__init__(config)
        if config.ways not in VecPLRUCache._np_tables:
            touch, victim = _build_plru_tables(config.ways)
            VecPLRUCache._np_tables[config.ways] = (
                np.asarray(touch, dtype=np.int64),
                np.asarray(victim, dtype=np.int64),
                touch,
                victim,
            )
        (
            self._touch_np,
            self._victim_np,
            self._touch_tab,
            self._victim_tab,
        ) = VecPLRUCache._np_tables[config.ways]
        self._levels = config.ways.bit_length() - 1
        #: per level, the tree-bit weights of that level's nodes (level ``lev``
        #: holds nodes ``2^lev - 1 .. 2^(lev+1) - 2``)
        self._node_weights = [
            np.int64(1) << ((1 << lev) - 1 + np.arange(1 << lev, dtype=np.int64))
            for lev in range(self._levels)
        ]
        self._init_meta()

    def _init_meta(self) -> None:
        self._tree = np.zeros(self.num_sets, dtype=np.int64)

    def _touch(self, set_idx: int, way: int) -> None:
        # Python-list table lookup: cheaper than fancy-indexing the numpy
        # table with a boxed scalar on this per-access path
        self._tree[set_idx] = self._touch_tab[
            (int(self._tree[set_idx]) << self._levels) | way
        ]

    def _victim(self, set_idx: int) -> int:
        return self._victim_tab[int(self._tree[set_idx])]

    def touch_batch(self, sets: np.ndarray, ways: np.ndarray) -> None:
        self._tree[sets] = self._touch_np[(self._tree[sets] << self._levels) | ways]

    def touch_last_batch(self, sets: np.ndarray, ways: np.ndarray, k: int) -> None:
        """Order-free equivalent of touching ``(sets[i], ways[i])`` in sequence.

        A touch of way ``w`` writes every tree node on its root path, pointing
        it away from ``w``'s half — so each node's final bit is decided solely
        by the *last* touch among the ways in its subtree (bit set iff that
        touch fell in the left half, unchanged if none did).  One stamp
        scatter plus a per-level halved max-reduction replaces the per-round
        loop.
        """
        last = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        # last-assignment-wins + stamps increasing in call order ⇒ per-way max
        last[sets, ways] = np.arange(k, dtype=np.int64)
        set_bits = np.zeros(self.num_sets, dtype=np.int64)
        clr_bits = np.zeros(self.num_sets, dtype=np.int64)
        # bottom-up cascade of pairwise maxes: at level ``lev`` each node's
        # left/right subtree aggregates are adjacent columns of the cascade
        c = last
        for lev in range(self._levels - 1, -1, -1):
            pairs = c.reshape(self.num_sets, 1 << lev, 2)
            lmax = pairs[:, :, 0]
            rmax = pairs[:, :, 1]
            w = self._node_weights[lev]
            set_bits |= (lmax > rmax) @ w
            clr_bits |= (rmax > lmax) @ w
            if lev:
                c = pairs.max(axis=2)
        self._tree |= set_bits
        self._tree &= ~clr_bits

    def victim_batch(self, sets: np.ndarray) -> np.ndarray:
        return self._victim_np[self._tree[sets]]

    def _meta_arrays(self) -> tuple[np.ndarray, ...]:
        return (self._tree,)


def make_vec_cache(config: CacheConfig) -> VecSetAssocCache | None:
    """Vectorized cache for ``config.policy``, or None if uncovered."""
    if config.policy == "lru":
        return VecLRUCache(config)
    if config.policy == "nru":
        if not 2 <= config.ways <= _MAX_MASK_WAYS:
            return None
        return VecNRUCache(config)
    if config.policy == "plru":
        if config.ways > _MAX_MASK_WAYS:
            return None
        return VecPLRUCache(config)
    # random replacement draws from the scalar RNG per eviction — a batch
    # would change the draw order, so it stays scalar
    return None
