"""Vectorized cache-simulation kernels (structure-of-arrays fast paths).

The scalar cache models in :mod:`repro.caches.setassoc` are the innermost
loop of every experiment; this package replaces the interpreter-bound per
-access loops with numpy batch kernels while keeping the results
**bit-identical** — every counter, every eviction, every replacement-state
transition matches the scalar path exactly (enforced by the property suite
in ``tests/test_kernels.py`` and the golden fixtures).

Three layers:

* :mod:`repro.kernels.veccache` — drop-in cache classes whose replacement
  metadata lives in numpy arrays and whose tag store keeps a 2-D int64
  mirror, so batch probes/fills are single vector operations while the
  scalar int-code protocol keeps working access-by-access,
* :mod:`repro.kernels.l3kernel` — the batched L3-only kernel used for the
  Pirate's private-level bypass (round decomposition by set, an analytic
  resident-set shortcut for the steady-state sweep, a spin shortcut for the
  idle Pirate),
* :mod:`repro.kernels.pipekernel` — the pipelined full-hierarchy kernel:
  round-decomposed L1 and L2 stages feeding a sequential L3 stage, with a
  snapshot/rollback safety net for the one upward feedback edge
  (inclusive-L3 back-invalidation).

Two further layers batch across *configurations* and lower to C:

* :mod:`repro.kernels.batchkernel` — the size-stacked L3 bank: every
  pirate size of a sweep simulated in one pass over the shared stream,
  with the round decomposition computed once for the whole batch,
* :mod:`repro.kernels.cext` — an opt-in C lowering of the scalar in-order
  L3 loop (compiled with the system compiler at first use, pure-Python
  fallback otherwise), used by the bank and by kernel mode ``batch`` for
  the sequential paths the vector kernels bail out of.

Selection is per chunk via the dispatcher in
:class:`repro.caches.hierarchy.CacheHierarchy` and is controlled by
``MachineConfig.kernel`` (``auto``/``scalar``/``vector``/``batch``); set
sampling (``MachineConfig.sample_sets``) is a separate, *statistical* mode
that trades exactness for speed and is validated by ``repro validate``.
"""

from . import cext
from .batchkernel import BatchedL3Bank
from .l3kernel import ChunkRounds, run_l3_chunk, run_l3_chunk_cext
from .pipekernel import run_full_chunk
from .veccache import (
    VecLRUCache,
    VecNRUCache,
    VecPLRUCache,
    VecSetAssocCache,
    make_vec_cache,
)

__all__ = [
    "BatchedL3Bank",
    "ChunkRounds",
    "cext",
    "run_l3_chunk_cext",
    "VecLRUCache",
    "VecNRUCache",
    "VecPLRUCache",
    "VecSetAssocCache",
    "make_vec_cache",
    "run_full_chunk",
    "run_l3_chunk",
]
