"""Exception types raised by the repro library.

Keeping these in one module lets callers catch the library's failures without
importing the internals that raise them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """A machine/cache/workload configuration is internally inconsistent."""


class SimulationError(ReproError):
    """The simulated machine reached an impossible state (a library bug)."""


class MeasurementError(ReproError):
    """A pirating measurement could not produce trustworthy data.

    Raised e.g. when the Pirate's fetch ratio never drops below the threshold
    during warm-up, so no cache size can be attributed to the Target.
    """


class TraceError(ReproError):
    """Trace capture or replay failed (bad markers, empty trace, ...)."""


class RetryExhaustedError(MeasurementError):
    """The retry engine ran out of attempts without a trustworthy interval.

    Raised only under a strict :class:`~repro.core.resilience.RetryPolicy`;
    the default policy degrades gracefully instead (see
    :class:`~repro.core.resilience.PartialCurve`).  Carries the attempt count
    and the per-attempt failure reasons for post-mortems.
    """

    def __init__(self, message: str, *, attempts: int = 0, reasons: tuple | list = ()):
        super().__init__(message)
        self.attempts = attempts
        self.reasons = list(reasons)


class DegradedMeasurement(MeasurementError):
    """Only a degraded (size-substituted) measurement was achievable.

    Raised under a strict retry policy when the requested steal size is
    unachievable (e.g. the paper's libquantum >5MB ceiling, Table II) and the
    engine had to fall back to the nearest achievable size.  Non-strict
    policies record the substitution in the point's quality metadata instead.
    """
