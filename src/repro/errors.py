"""Exception types raised by the repro library.

Keeping these in one module lets callers catch the library's failures without
importing the internals that raise them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """A machine/cache/workload configuration is internally inconsistent."""


class SimulationError(ReproError):
    """The simulated machine reached an impossible state (a library bug)."""


class MeasurementError(ReproError):
    """A pirating measurement could not produce trustworthy data.

    Raised e.g. when the Pirate's fetch ratio never drops below the threshold
    during warm-up, so no cache size can be attributed to the Target.
    """


class TraceError(ReproError):
    """Trace capture or replay failed (bad markers, empty trace, ...)."""
