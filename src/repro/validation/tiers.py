"""Validation tiers: how hard a conformance run tries.

A tier bundles every knob of a differential run — the cache-size grid, the
trace budget, the window policy, the instruction budgets — so "quick" and
"full" name reproducible configurations instead of ad-hoc flag soup.  The
window policy mirrors :mod:`repro.experiments.fig6_reference`: the traced
window must sweep the workload's resident footprint several times or the
reference replay never leaves its own cold start and the baseline offset
mis-corrects the whole curve (``footprint_sweeps``), but is capped at
``window_cap * trace_lines`` so streaming giants stay affordable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigError
from ..units import MB

#: The paper's fetch-ratio error bound (§V: max absolute error 2.7% < 3%).
DEFAULT_CONFORMANCE_BOUND = 0.03


@dataclass(frozen=True)
class ValidationTier:
    """One named parameter set for a differential validation run."""

    name: str
    #: Target-available cache sizes to sweep (MB, way-representable)
    sizes_mb: tuple[float, ...]
    #: base address-trace budget (lines)
    trace_lines: int
    #: the window must cover this many sweeps of the resident footprint
    footprint_sweeps: int = 6
    #: hard window cap, in multiples of ``trace_lines``
    window_cap: int = 8
    #: instructions run Pirate-free before the traced window starts
    warm_start_instructions: float = 1_500_000.0
    #: instruction budget of the hot-region profiling step (the Gprof step)
    profile_instructions: float = 1_500_000.0
    #: fraction of the trace that warms the reference simulator uncounted
    reference_warmup_fraction: float = 0.5
    #: conformance bound on |pirate - reference| fetch ratio
    bound: float = DEFAULT_CONFORMANCE_BOUND

    def __post_init__(self) -> None:
        if not self.sizes_mb:
            raise ConfigError(f"tier {self.name!r} needs at least one cache size")
        if self.trace_lines < 1:
            raise ConfigError(f"tier {self.name!r}: trace budget must be positive")
        if self.footprint_sweeps < 1 or self.window_cap < 1:
            raise ConfigError(f"tier {self.name!r}: window policy must be >= 1")
        if not 0.0 < self.bound < 1.0:
            raise ConfigError(f"tier {self.name!r}: bound must be in (0, 1)")
        if not 0.0 <= self.reference_warmup_fraction < 1.0:
            raise ConfigError(f"tier {self.name!r}: warmup fraction must be in [0, 1)")

    def window_lines(self, footprint_lines: int) -> int:
        """Trace length for a workload with ``footprint_lines`` resident."""
        lines = self.trace_lines
        if footprint_lines:
            lines = int(
                min(
                    max(lines, self.footprint_sweeps * footprint_lines),
                    self.window_cap * self.trace_lines,
                )
            )
        return lines

    def with_sizes(self, sizes_mb: list[float]) -> "ValidationTier":
        """The same tier over a different size grid (CLI ``--sizes``)."""
        return replace(self, sizes_mb=tuple(sizes_mb))

    def with_bound(self, bound: float) -> "ValidationTier":
        """The same tier with a different conformance bound (CLI ``--bound``)."""
        return replace(self, bound=bound)


def _grid(step: float, lo: float = 0.5, hi: float = 8.0) -> tuple[float, ...]:
    sizes = []
    s = lo
    while s <= hi + 1e-9:
        sizes.append(round(s, 3))
        s += step
    return tuple(sizes)


#: Minutes, not hours: three way-representable sizes spanning the grid and
#: a reduced trace budget.  Every built-in workload conforms within the 3%
#: bound at this tier (the acceptance bar of the ``validate`` CLI).
VALIDATE_QUICK = ValidationTier(
    name="quick",
    sizes_mb=(2.0, 5.0, 8.0),
    trace_lines=80_000,
)

#: The paper's grid (16 sizes, 0.5MB steps) at fig6's FULL trace fidelity.
VALIDATE_FULL = ValidationTier(
    name="full",
    sizes_mb=_grid(0.5),
    trace_lines=500_000,
    warm_start_instructions=2_000_000.0,
    profile_instructions=4_000_000.0,
)


def resolve_tier(name: str) -> ValidationTier:
    """The built-in tier named ``name`` ("quick" or "full")."""
    tiers = {t.name: t for t in (VALIDATE_QUICK, VALIDATE_FULL)}
    try:
        return tiers[name]
    except KeyError:
        raise ConfigError(
            f"unknown validation tier {name!r}; known: {sorted(tiers)}"
        ) from None


def check_way_representable(sizes_mb: list[float], *, l3_size: int, l3_ways: int) -> None:
    """Reject sizes the way-reduction reference geometry cannot express.

    Raises :class:`~repro.errors.ConfigError` naming the first bad size, so
    the CLI can fail fast before any simulation runs.
    """
    way_bytes = l3_size // l3_ways
    for size in sizes_mb:
        w = int(round(size * MB / way_bytes))
        if w < 1 or w > l3_ways or abs(w * way_bytes - size * MB) > 1e-6 * MB:
            raise ConfigError(
                f"size {size:g}MB is not a whole number of {way_bytes / MB:g}MB "
                f"ways; the reference geometry needs multiples of {way_bytes / MB:g}MB"
            )
