"""Differential validation: conformance oracle for the pirated cache.

The paper's credibility rests on §III-B / Figs. 4, 6, 7: the cache a Target
sees while the Pirate steals ``S`` bytes of the ``C``-byte L3 must behave
like a *real* cache of size ``C - S``.  Both halves of that claim live in
this library — the measurement harnesses in :mod:`repro.core` and the
trace-driven reference simulator in :mod:`repro.reference` — and this
package is the machinery that systematically proves they agree:

* :mod:`~repro.validation.tiers` — named parameter sets
  (:data:`VALIDATE_QUICK` / :data:`VALIDATE_FULL`) controlling grid,
  window and budget of a validation run,
* :mod:`~repro.validation.differential` — replay one workload's marked
  window through both models: the Pirate shrinks the cache by way
  competition at runtime, the reference simulator by configuration
  (``(A - k)``-way geometry), same markers, same trace,
* :mod:`~repro.validation.conformance` — per-point divergence (fetch
  ratio, miss ratio, CPI delta) against the paper's 3% fetch-ratio error
  bound, rolled up into structured pass/fail reports
  (``conformance_report.json``),
* :mod:`~repro.validation.properties` — metamorphic invariants both
  models must satisfy regardless of workload (miss-ratio monotonicity in
  cache size, LRU-stack inclusion under way stealing, vanishing fetch
  ratio as the stolen size goes to zero, serial == parallel report
  equivalence), driven by hypothesis in ``tests/test_validation_props.py``,
* :mod:`~repro.validation.surrogate` — the same oracle pointed at the
  analytic engine (:mod:`repro.surrogate`): per-size PASS/GRAY/FAIL
  grades of the predicted curve against the reference simulator
  (``repro validate --engine surrogate``).

Entry points: ``python -m repro validate`` (CLI), the ``conformance``
experiment in :mod:`repro.experiments.runall`, and the ``conformance``
golden scenario.
"""

from .conformance import (
    ConformanceReport,
    PointVerdict,
    SuiteReport,
    conformance_report,
    validate_suite,
)
from .differential import DifferentialResult, differential_compare, tier_from_scale
from .properties import (
    lru_stack_mismatches,
    monotone_violations,
    pirate_idle_fetch_ratio,
    reports_equivalent,
)
from .surrogate import (
    SizeGrade,
    SurrogateGrade,
    SurrogateSuiteReport,
    grade_suite,
    grade_surrogate,
)
from .tiers import VALIDATE_FULL, VALIDATE_QUICK, ValidationTier, resolve_tier

__all__ = [
    "ValidationTier",
    "VALIDATE_QUICK",
    "VALIDATE_FULL",
    "resolve_tier",
    "DifferentialResult",
    "differential_compare",
    "tier_from_scale",
    "PointVerdict",
    "ConformanceReport",
    "SuiteReport",
    "conformance_report",
    "validate_suite",
    "monotone_violations",
    "lru_stack_mismatches",
    "pirate_idle_fetch_ratio",
    "reports_equivalent",
    "SizeGrade",
    "SurrogateGrade",
    "SurrogateSuiteReport",
    "grade_surrogate",
    "grade_suite",
]
