"""Metamorphic invariants the cache models must satisfy.

Conformance (``|pirate - reference| <= 3%``) checks the two models against
*each other*; these predicates check them against *theory* — relations that
must hold for any workload, so hypothesis can drive them over arbitrary
generated access streams (``tests/test_validation_props.py``):

* **LRU stack inclusion** (§II-B1, Fig. 3): an LRU cache's contents at
  ``A`` ways are exactly the top ``A`` entries of the recency stack, so a
  reference replay at fewer ways hits only where the wider cache hits.
  :func:`lru_stack_mismatches` replays a stream through the real
  :class:`~repro.caches.setassoc.LRUCache` in lock-step with the abstract
  stack model and reports any disagreement.
* **Monotonicity**: by the same inclusion argument, LRU misses are
  non-increasing in associativity.  :func:`monotone_violations` sweeps a
  way grid and reports every adjacent pair that orders the wrong way.
  (NRU is only *approximately* a stack algorithm — the paper leans on this
  for its Fig. 4 LRU/NRU contrast — so the exact predicate is stated for
  LRU.)
* **Vanishing theft**: as ``S -> 0`` the Pirate's working set shrinks to a
  single spin line, so its own fetch ratio over any window collapses to
  the rare re-fetches of that one line — orders of magnitude below the 3%
  threshold — and the Target sees the full ``C``.
  :func:`pirate_idle_fetch_ratio` measures it.
* **Determinism under parallelism**: a conformance suite's report is a pure
  function of (benchmarks, tier, seed); :func:`reports_equivalent` is the
  structural equality the serial == parallel property asserts.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..caches.setassoc import LRUCache
from ..config import CacheConfig, MachineConfig, nehalem_config
from ..core.attach import measure_between_markers
from ..errors import ConfigError
from ..hardware.thread import WorkloadLike
from .conformance import ConformanceReport, SuiteReport


def _lru_cache(ways: int, num_sets: int, line_size: int = 64) -> LRUCache:
    return LRUCache(
        CacheConfig(
            name=f"lru{ways}x{num_sets}",
            size=num_sets * ways * line_size,
            ways=ways,
            line_size=line_size,
            policy="lru",
        )
    )


def _lru_misses(line_addrs: Sequence[int], ways: int, num_sets: int) -> int:
    cache = _lru_cache(ways, num_sets)
    for addr in line_addrs:
        cache.access(*cache.split(addr))
    return cache.miss_count


def monotone_violations(
    line_addrs: Sequence[int], way_grid: Sequence[int], *, num_sets: int = 1
) -> list[tuple[int, int]]:
    """Adjacent way pairs where a *larger* LRU cache misses *more*.

    Replays ``line_addrs`` through an LRU cache at every associativity in
    ``way_grid`` (same set count — the way-stealing geometry) and returns
    ``(smaller_ways, larger_ways)`` for each adjacent pair whose miss
    counts increase with size.  Stack inclusion says the result is always
    empty for LRU; a non-empty result is a simulator bug.
    """
    grid = sorted(set(way_grid))
    if any(w < 1 for w in grid):
        raise ConfigError("way grid entries must be >= 1")
    misses = [_lru_misses(line_addrs, w, num_sets) for w in grid]
    return [
        (small, large)
        for (small, large), (m_small, m_large) in zip(
            zip(grid, grid[1:]), zip(misses, misses[1:])
        )
        if m_large > m_small
    ]


def lru_stack_mismatches(
    line_addrs: Sequence[int], ways: int, *, num_sets: int = 1
) -> list[int]:
    """Indices where the LRU simulator disagrees with the stack model.

    The abstract model keeps one recency stack per set; an access hits iff
    its stack distance is ``< ways`` (Fig. 3's inclusion property,
    generalised from the figure's single set to any geometry).  The real
    :class:`~repro.caches.setassoc.LRUCache` replays the same stream in
    lock-step; any index where hit/miss verdicts differ is returned.  An
    empty list *proves* the simulator implements a stack algorithm on this
    stream, which is what licenses the monotonicity property above.
    """
    if ways < 1:
        raise ConfigError("ways must be >= 1")
    cache = _lru_cache(ways, num_sets)
    stacks: dict[int, list[int]] = {}
    mismatches = []
    for i, addr in enumerate(line_addrs):
        set_idx, tag = cache.split(addr)
        stack = stacks.setdefault(set_idx, [])
        model_hit = tag in stack[:ways]
        if tag in stack:
            stack.remove(tag)
        stack.insert(0, tag)
        del stack[ways:]
        if cache.access(set_idx, tag).hit != model_hit:
            mismatches.append(i)
    return mismatches


def pirate_idle_fetch_ratio(
    target_factory: Callable[[], WorkloadLike] | WorkloadLike,
    start_marker: float,
    stop_marker: float,
    *,
    config: MachineConfig | None = None,
    seed: int = 0,
) -> float:
    """The Pirate's own fetch ratio over a window while stealing nothing.

    At ``S = 0`` the Pirate spins on one cache line; the only fetches it
    can incur are re-fetches after the Target's inclusive-L3 pressure
    evicts that single line.  For every workload, window, and seed the
    ratio must therefore be negligible — zero for most workloads, and in
    any case orders of magnitude under the 3% trust threshold — the limit
    case of §III-A's "the Pirate must keep its working set cached"
    requirement.
    """
    win = measure_between_markers(
        target_factory,
        0,
        start_marker,
        stop_marker,
        config=config or nehalem_config(prefetch_enabled=False),
        seed=seed,
    )
    return win.pirate_fetch_ratio


def reports_equivalent(
    a: SuiteReport | ConformanceReport, b: SuiteReport | ConformanceReport
) -> bool:
    """Structural equality of two conformance reports.

    Compares the full serialised form (every point, every verdict), which
    is the equality the serial == parallel metamorphic property needs:
    ``validate_suite(..., workers=0)`` and ``workers=2`` must produce
    reports for which this returns True.
    """
    return type(a) is type(b) and a.to_dict() == b.to_dict()
