"""Replay one workload through both cache models (§III-B's methodology).

One differential comparison is the full Fig. 6 pipeline for a single
workload:

1. **Gprof step** — profile the workload and place markers on its hot
   region (:func:`repro.tracing.profile_workload`),
2. **Pin step** — capture the address trace of exactly that window
   (:func:`repro.tracing.capture_trace`),
3. **reference side** — replay the trace through genuine ``(A - k)``-way
   caches (:func:`repro.reference.reference_curve`, way reduction at
   constant sets — the Pirate-equivalent geometry) and pin the curve to a
   counter-measured solo baseline (:func:`repro.reference.apply_offset`),
4. **pirated side** — attach the Pirate at the same markers once per swept
   size and measure the Target's counters over the identical window
   (:func:`repro.core.attach.measure_between_markers`).

Per-size pirate runs are independent co-runs on separate machines, so they
fan out over :func:`repro.core.parallel.parallel_map`; results are
bit-identical for any worker count.  :mod:`repro.experiments.fig6_reference`
delegates here (via :func:`tier_from_scale`), so the experiment and the
conformance oracle can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.errors import CurveError, curve_errors
from ..config import MachineConfig, nehalem_config
from ..core.attach import AttachWindow, measure_between_markers
from ..core.curves import IntervalSample, PerformanceCurve
from ..core.parallel import parallel_map
from ..experiments.common import benchmark_factory
from ..experiments.scale import Scale
from ..observability import ensure_telemetry
from ..reference import apply_offset, reference_curve
from ..reference.sweep import ReferenceCurve
from ..rng import stable_seed
from ..tracing import capture_trace, profile_workload
from ..units import MB
from ..workloads import TargetSpec
from .tiers import ValidationTier


def tier_from_scale(scale: Scale) -> ValidationTier:
    """The tier matching an experiment scale's fig6 parameters exactly.

    ``fig6_reference`` routes through this, so a fig6 run at any
    :class:`~repro.experiments.scale.Scale` reproduces its pre-refactor
    numbers bit-for-bit.
    """
    budget = scale.dynamic_total_instructions / 4
    return ValidationTier(
        name=scale.name,
        sizes_mb=tuple(scale.sizes_mb),
        trace_lines=scale.trace_lines,
        footprint_sweeps=6,
        window_cap=8,
        warm_start_instructions=min(2_000_000.0, budget),
        profile_instructions=min(budget, 4_000_000.0),
        reference_warmup_fraction=0.5,
    )


@dataclass
class DifferentialResult:
    """Both models' view of one workload over one window."""

    benchmark: str
    #: pirate-measured curve (way competition at runtime)
    pirate: PerformanceCurve
    #: calibrated reference curve (way reduction by configuration)
    reference: ReferenceCurve
    #: the solo full-cache run that calibrated the reference curve
    baseline: AttachWindow
    #: Fig. 7 error metrics over the trusted sizes
    error: CurveError
    #: instruction markers delimiting the compared window
    start_marker: float = 0.0
    stop_marker: float = 0.0


@dataclass(frozen=True)
class _SizeTask:
    """One per-size pirate measurement; module-level data, so it pickles."""

    factory: TargetSpec
    stolen_bytes: int
    start_marker: float
    stop_marker: float
    config: MachineConfig
    seed: int


def _measure_size(task: _SizeTask) -> IntervalSample:
    """Pure per-size task (runs in-process or in a pool worker)."""
    win = measure_between_markers(
        task.factory,
        task.stolen_bytes,
        task.start_marker,
        task.stop_marker,
        config=task.config,
        seed=task.seed,
    )
    return IntervalSample(
        target_cache_bytes=win.target_cache_bytes,
        target=win.target,
        pirate_fetch_ratio=win.pirate_fetch_ratio,
        valid=win.valid,
    )


def differential_compare(
    name: str,
    tier: ValidationTier,
    *,
    config: MachineConfig | None = None,
    seed: int = 0,
    workers: int = 0,
    telemetry=None,
    factory: TargetSpec | None = None,
) -> DifferentialResult:
    """Run the full §III-B methodology for one benchmark at one tier.

    Prefetchers are disabled on both sides, as in the paper's validation
    runs; the residual cold-start bias is calibrated away by the baseline
    offset.  ``workers >= 2`` fans the per-size pirate runs over a process
    pool — the result is identical for any worker count.

    ``factory`` overrides the suite lookup with an explicit
    :class:`~repro.workloads.TargetSpec` — the scenario-grid conformance
    collector judges arbitrary zoo members through the same oracle this
    way; ``name`` then only labels the result.
    """
    config = config or nehalem_config(prefetch_enabled=False)
    tel = ensure_telemetry(telemetry)
    if factory is None:
        factory = benchmark_factory(name, seed=stable_seed(seed, name))

    with tel.span("validate_benchmark", benchmark=name, tier=tier.name):
        # Gprof step: place markers on the hot region
        with tel.span("validate_profile", instructions=tier.profile_instructions):
            profile = profile_workload(
                factory,
                tier.profile_instructions,
                config=config,
                seed=stable_seed(seed, name, "prof"),
            )
        hot = profile.hottest()
        wl = factory()
        footprint = min(wl.footprint_lines(), config.l3.num_lines)
        lines = tier.window_lines(footprint)
        window_instr = lines * wl.accesses_per_line / wl.mem_fraction
        start = hot.start_marker + tier.warm_start_instructions
        stop = start + window_instr

        # Pin step: capture the trace of exactly that window
        with tel.span("validate_trace", lines=lines):
            trace = capture_trace(factory(), start, stop, benchmark=name)

        # reference curve + baseline-offset calibration (stolen = 0 run)
        with tel.span("validate_reference", sizes=len(tier.sizes_mb)):
            ref = reference_curve(
                trace,
                list(tier.sizes_mb),
                base_config=config,
                warmup_fraction=tier.reference_warmup_fraction,
            )
        with tel.span("validate_baseline"):
            baseline = measure_between_markers(
                factory, 0, start, stop, config=config,
                seed=stable_seed(seed, name, "base"),
            )
        ref = apply_offset(ref, baseline.target.fetch_ratio)

        # pirate measurements attached at the same markers, one run per size
        tasks = [
            _SizeTask(
                factory=factory,
                stolen_bytes=config.l3.size - int(size_mb * MB),
                start_marker=start,
                stop_marker=stop,
                config=config,
                seed=stable_seed(seed, name, "pirate", size_mb),
            )
            for size_mb in tier.sizes_mb
        ]
        with tel.span("validate_pirate", sizes=len(tasks), workers=workers):
            samples = parallel_map(_measure_size, tasks, workers=workers)
        pirate = PerformanceCurve.from_samples(name, samples, config.core.clock_hz)
        for s in samples:
            tel.count("validation_points_total")
            if not s.valid:
                tel.count("validation_untrusted_total")
        err = curve_errors(pirate, ref, benchmark=name)
    return DifferentialResult(
        benchmark=name,
        pirate=pirate,
        reference=ref,
        baseline=baseline,
        error=err,
        start_marker=start,
        stop_marker=stop,
    )
