"""Grading tier for the analytic surrogate engine.

The conformance oracle (:mod:`~repro.validation.conformance`) certifies
the *pirated cache* against the reference simulator; this module certifies
the *surrogate predictor* the same way.  Per benchmark it reuses the exact
differential pipeline head — same profiling step, same markers, same
captured trace, same calibrated reference curve — then substitutes the
surrogate model for the Pirate side:

1. profile the workload, trace the hot window
   (identical seeds and window policy to
   :func:`~repro.validation.differential.differential_compare`),
2. replay the trace through the reference simulator at every tier size,
3. build a :class:`~repro.surrogate.SurrogateModel` from the *same* trace
   (``skip_fraction`` mirrors the reference warm-up fraction), predict
   every size, and anchor the predicted curve at the full-cache point the
   same way §III-B1 anchors measured curves to a solo baseline,
4. grade each size PASS / GRAY / FAIL against the tier's fetch-ratio
   bound.  GRAY marks sizes the model itself flags as low-confidence (its
   error estimate exceeds the surrogate bound) — the documented grey
   regions, excluded from pass/fail exactly like the paper's untrusted
   points.  A FAIL is a *trusted* prediction that still diverges: the
   model was confidently wrong, which is what this oracle exists to catch.

``repro validate --engine surrogate`` and the CI surrogate-conformance job
run :func:`grade_suite` over the full workload grid.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..config import MachineConfig, nehalem_config
from ..core.parallel import parallel_map
from ..experiments.common import benchmark_factory
from ..observability import ensure_telemetry
from ..reference import reference_curve
from ..rng import stable_seed
from ..surrogate import SurrogateModel, SurrogatePolicy, profile_trace
from ..tracing import capture_trace, profile_workload
from ..units import LINE_SIZE, MB
from .tiers import ValidationTier


@dataclass
class SizeGrade:
    """The surrogate's verdict at one swept cache size."""

    size_mb: float
    predicted_fetch_ratio: float
    reference_fetch_ratio: float
    #: |anchored prediction - reference| (the bounded quantity)
    divergence: float
    #: the model's self-reported uncertainty at this size
    error_estimate: float
    #: the model called this prediction confident
    trusted: bool
    #: "PASS" (trusted, within bound), "GRAY" (untrusted), "FAIL"
    verdict: str

    def to_dict(self) -> dict:
        return {
            "size_mb": self.size_mb,
            "predicted_fetch_ratio": self.predicted_fetch_ratio,
            "reference_fetch_ratio": self.reference_fetch_ratio,
            "divergence": self.divergence,
            "error_estimate": self.error_estimate,
            "trusted": self.trusted,
            "verdict": self.verdict,
        }


@dataclass
class SurrogateGrade:
    """One workload's per-size grades plus the roll-up the CI gate reads."""

    benchmark: str
    bound: float
    grades: list[SizeGrade] = field(default_factory=list)
    #: anchor offset applied to the predicted curve (§III-B1-style)
    offset: float = 0.0

    @property
    def failures(self) -> list[float]:
        return [g.size_mb for g in self.grades if g.verdict == "FAIL"]

    @property
    def grey(self) -> list[float]:
        """Documented grey regions: sizes the model flags itself (MB)."""
        return [g.size_mb for g in self.grades if g.verdict == "GRAY"]

    @property
    def worst_divergence(self) -> float:
        trusted = [g.divergence for g in self.grades if g.trusted]
        return max(trusted, default=0.0)

    @property
    def passed(self) -> bool:
        """No trusted prediction diverges beyond the bound."""
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "bound": self.bound,
            "passed": self.passed,
            "worst_divergence": self.worst_divergence,
            "failures": self.failures,
            "grey": self.grey,
            "offset": self.offset,
            "grades": [g.to_dict() for g in self.grades],
        }

    def format(self) -> str:
        out = [f"-- {self.benchmark}"]
        out.append(
            f"{'MB':>6} {'pred FR%':>9} {'ref FR%':>9} {'|diff|%':>8} "
            f"{'est%':>7} {'verdict':>8}"
        )
        for g in self.grades:
            out.append(
                f"{g.size_mb:6.1f} {g.predicted_fetch_ratio * 100:9.3f} "
                f"{g.reference_fetch_ratio * 100:9.3f} {g.divergence * 100:8.3f} "
                f"{g.error_estimate * 100:7.3f} {g.verdict:>8}"
            )
        out.append(
            f"   {'PASS' if self.passed else 'FAIL'}: worst trusted divergence "
            f"{self.worst_divergence * 100:.3f}% vs bound {self.bound * 100:.1f}%"
            + (f", failures at {self.failures}MB" if self.failures else "")
            + (f", grey at {self.grey}MB" if self.grey else "")
        )
        return "\n".join(out)


@dataclass
class SurrogateSuiteReport:
    """The surrogate oracle's verdict over a set of workloads."""

    tier: str
    seed: int
    bound: float
    reports: list[SurrogateGrade] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.reports) and all(r.passed for r in self.reports)

    @property
    def worst_divergence(self) -> float:
        return max((r.worst_divergence for r in self.reports), default=0.0)

    @property
    def failing(self) -> list[str]:
        return [r.benchmark for r in self.reports if not r.passed]

    def by_name(self, name: str) -> SurrogateGrade:
        for r in self.reports:
            if r.benchmark == name:
                return r
        raise KeyError(name)

    def to_dict(self) -> dict:
        return {
            "tier": self.tier,
            "seed": self.seed,
            "bound": self.bound,
            "engine": "surrogate",
            "passed": self.passed,
            "worst_divergence": self.worst_divergence,
            "failing": self.failing,
            "benchmarks": [r.to_dict() for r in self.reports],
        }

    def write_json(self, path: str | Path) -> None:
        """Write the report as a JSON artifact (atomic enough for CI)."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")

    def summary_line(self) -> str:
        return (
            f"surrogate suite: {'PASS' if self.passed else 'FAIL'} — "
            f"{len(self.reports) - len(self.failing)}/{len(self.reports)} benchmarks "
            f"conform, worst trusted divergence {self.worst_divergence * 100:.3f}%"
            + (f", failing: {', '.join(self.failing)}" if self.failing else "")
        )

    def format(self) -> str:
        out = [
            f"Surrogate grading — analytic prediction vs reference simulator "
            f"(tier={self.tier}, bound={self.bound * 100:.1f}%)"
        ]
        for r in self.reports:
            out.append(r.format())
        out.append(self.summary_line())
        return "\n".join(out)


def grade_surrogate(
    name: str,
    tier: ValidationTier,
    *,
    config: MachineConfig | None = None,
    seed: int = 0,
    policy: SurrogatePolicy | None = None,
    telemetry=None,
) -> SurrogateGrade:
    """Grade the surrogate's curve prediction for one benchmark.

    The prediction is demand-only, so the reference runs prefetch-disabled
    (the default config here, matching :func:`differential_compare`).
    """
    config = config or nehalem_config(prefetch_enabled=False)
    policy = policy or SurrogatePolicy()
    tel = ensure_telemetry(telemetry)
    factory = benchmark_factory(name, seed=stable_seed(seed, name))

    with tel.span("grade_surrogate", benchmark=name, tier=tier.name):
        # identical head to differential_compare: same seeds, same window
        profile = profile_workload(
            factory,
            tier.profile_instructions,
            config=config,
            seed=stable_seed(seed, name, "prof"),
        )
        hot = profile.hottest()
        wl = factory()
        footprint = min(wl.footprint_lines(), config.l3.num_lines)
        lines = tier.window_lines(footprint)
        window_instr = lines * wl.accesses_per_line / wl.mem_fraction
        start = hot.start_marker + tier.warm_start_instructions
        trace = capture_trace(factory(), start, start + window_instr, benchmark=name)

        ref = reference_curve(
            trace,
            list(tier.sizes_mb),
            base_config=config,
            warmup_fraction=tier.reference_warmup_fraction,
        )

        # surrogate side: same trace, warm-up skip mirroring the reference
        sprof = profile_trace(
            trace,
            skip_fraction=tier.reference_warmup_fraction,
            sample_rate=policy.sample_rate,
            seed=stable_seed(seed, name, "surrogate"),
        )
        model = SurrogateModel(sprof, config, bound=policy.bound)
        sizes = sorted(tier.sizes_mb)
        preds = {s: model.predict_lines(int(s * MB) // LINE_SIZE) for s in sizes}

        # anchor at the full-cache point, as §III-B1 anchors measured curves
        # to a solo baseline; by construction the largest size diverges by
        # the reference's own residual only
        largest = sizes[-1]
        offset = ref.fetch_ratio_at(largest) - preds[largest].fetch_ratio

        grade = SurrogateGrade(benchmark=name, bound=tier.bound, offset=offset)
        for s in sizes:
            pred = preds[s]
            anchored = max(pred.fetch_ratio + offset, 0.0)
            ref_fetch = ref.fetch_ratio_at(s)
            divergence = abs(anchored - ref_fetch)
            trusted = pred.confident
            if not trusted:
                verdict = "GRAY"
            elif divergence <= tier.bound:
                verdict = "PASS"
            else:
                verdict = "FAIL"
            grade.grades.append(
                SizeGrade(
                    size_mb=s,
                    predicted_fetch_ratio=anchored,
                    reference_fetch_ratio=ref_fetch,
                    divergence=divergence,
                    error_estimate=pred.error_estimate,
                    trusted=trusted,
                    verdict=verdict,
                )
            )
        tel.count("surrogate_grades_total", len(grade.grades))
        if not grade.passed:
            tel.event(
                "surrogate_grade_failure",
                benchmark=name,
                worst_divergence=grade.worst_divergence,
            )
    return grade


@dataclass(frozen=True)
class _GradeTask:
    """One benchmark's grading run; module-level data, so it pickles."""

    name: str
    tier: ValidationTier
    config: MachineConfig | None
    seed: int
    policy: SurrogatePolicy | None


def _grade_one(task: _GradeTask) -> SurrogateGrade:
    return grade_surrogate(
        task.name,
        task.tier,
        config=task.config,
        seed=task.seed,
        policy=task.policy,
    )


def grade_suite(
    names: list[str],
    tier: ValidationTier,
    *,
    config: MachineConfig | None = None,
    seed: int = 0,
    workers: int = 0,
    policy: SurrogatePolicy | None = None,
    telemetry=None,
    echo=None,
) -> SurrogateSuiteReport:
    """Grade the surrogate over ``names`` at ``tier``.

    Each benchmark is one independent task, fanned over
    :func:`~repro.core.parallel.parallel_map` when ``workers >= 2``; the
    report is identical for any worker count.
    """
    tel = ensure_telemetry(telemetry)
    suite = SurrogateSuiteReport(tier=tier.name, seed=seed, bound=tier.bound)
    tasks = [_GradeTask(name, tier, config, seed, policy) for name in names]
    with tel.span("grade_suite", tier=tier.name, benchmarks=len(names)):
        for grade in parallel_map(_grade_one, tasks, workers=workers):
            suite.reports.append(grade)
            tel.count("surrogate_benchmarks_total")
            if not grade.passed:
                tel.count("surrogate_failures_total")
            if echo is not None:
                echo(grade.format())
    return suite
