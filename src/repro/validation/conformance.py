"""Conformance verdicts and structured reports.

A differential comparison yields two curves; this module decides whether
they *agree*.  Per swept size the verdict records the fetch-ratio
divergence |pirate - reference| against the paper's 3% bound, the
miss-ratio divergence, and the CPI delta versus the solo full-cache
baseline (the "curse of the shared cache" the Pirate exists to measure).
Sizes where the Pirate exceeded its own fetch-ratio threshold are
*untrusted* — the paper's grey regions — and are reported but excluded
from pass/fail, exactly as Fig. 6 excludes them from Fig. 7's errors.

Reports are plain data: ``to_dict()`` round-trips through JSON, which is
what the CLI writes as ``conformance_report.json`` and CI uploads as an
artifact.  Nothing here depends on wall-clock time, so the same seed
always produces a bit-identical report (the ``conformance`` golden
scenario locks this in).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..config import MachineConfig
from ..observability import ensure_telemetry
from .differential import DifferentialResult, differential_compare
from .tiers import DEFAULT_CONFORMANCE_BOUND, ValidationTier


@dataclass
class PointVerdict:
    """Conformance of both models at one swept cache size."""

    size_mb: float
    pirate_fetch_ratio: float
    reference_fetch_ratio: float
    #: |pirate - reference| fetch ratio (the bounded quantity)
    fetch_divergence: float
    pirate_miss_ratio: float
    reference_miss_ratio: float
    miss_divergence: float
    #: Target CPI at this size, and its delta vs the solo full-cache run
    cpi: float
    cpi_delta: float
    #: the Pirate held its working set (its own fetch ratio under threshold)
    trusted: bool
    #: trusted and within the bound (untrusted points are never conforming)
    conforms: bool

    def to_dict(self) -> dict:
        return {
            "size_mb": self.size_mb,
            "pirate_fetch_ratio": self.pirate_fetch_ratio,
            "reference_fetch_ratio": self.reference_fetch_ratio,
            "fetch_divergence": self.fetch_divergence,
            "pirate_miss_ratio": self.pirate_miss_ratio,
            "reference_miss_ratio": self.reference_miss_ratio,
            "miss_divergence": self.miss_divergence,
            "cpi": self.cpi,
            "cpi_delta": self.cpi_delta,
            "trusted": self.trusted,
            "conforms": self.conforms,
        }


@dataclass
class ConformanceReport:
    """One workload's verdicts plus the roll-up the CI gate reads."""

    benchmark: str
    bound: float
    points: list[PointVerdict] = field(default_factory=list)
    baseline_fetch_ratio: float = 0.0
    baseline_cpi: float = 0.0

    @property
    def trusted_points(self) -> list[PointVerdict]:
        return [p for p in self.points if p.trusted]

    @property
    def violations(self) -> list[float]:
        """Trusted sizes whose fetch divergence exceeds the bound (MB)."""
        return [p.size_mb for p in self.trusted_points if not p.conforms]

    @property
    def untrusted(self) -> list[float]:
        """Grey-region sizes: the Pirate could not hold its set (MB)."""
        return [p.size_mb for p in self.points if not p.trusted]

    @property
    def worst_divergence(self) -> float:
        """Largest fetch divergence over trusted sizes."""
        trusted = self.trusted_points
        return max((p.fetch_divergence for p in trusted), default=0.0)

    @property
    def passed(self) -> bool:
        """Every trusted size conforms, and at least one size is trusted."""
        trusted = self.trusted_points
        return bool(trusted) and all(p.conforms for p in trusted)

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "bound": self.bound,
            "passed": self.passed,
            "worst_divergence": self.worst_divergence,
            "violations": self.violations,
            "untrusted": self.untrusted,
            "baseline_fetch_ratio": self.baseline_fetch_ratio,
            "baseline_cpi": self.baseline_cpi,
            "points": [p.to_dict() for p in self.points],
        }

    def format(self) -> str:
        out = [f"-- {self.benchmark}"]
        out.append(
            f"{'MB':>6} {'pirate FR%':>11} {'ref FR%':>9} {'|diff|%':>8} "
            f"{'CPI':>7} {'dCPI':>7} {'verdict':>9}"
        )
        for p in self.points:
            verdict = "PASS" if p.conforms else ("GRAY" if not p.trusted else "FAIL")
            out.append(
                f"{p.size_mb:6.1f} {p.pirate_fetch_ratio * 100:11.3f} "
                f"{p.reference_fetch_ratio * 100:9.3f} {p.fetch_divergence * 100:8.3f} "
                f"{p.cpi:7.3f} {p.cpi_delta:+7.3f} {verdict:>9}"
            )
        out.append(
            f"   {'PASS' if self.passed else 'FAIL'}: worst divergence "
            f"{self.worst_divergence * 100:.3f}% vs bound {self.bound * 100:.1f}%"
            + (f", violations at {self.violations}MB" if self.violations else "")
            + (f", untrusted at {self.untrusted}MB" if self.untrusted else "")
        )
        return "\n".join(out)


def conformance_report(
    diff: DifferentialResult, bound: float = DEFAULT_CONFORMANCE_BOUND
) -> ConformanceReport:
    """Judge one differential comparison against the bound."""
    baseline_cpi = diff.baseline.target.cpi
    points = []
    for p in diff.pirate.points:
        ref_fetch = diff.reference.fetch_ratio_at(p.cache_mb)
        ref_miss = diff.reference.miss_ratio_at(p.cache_mb)
        fetch_div = abs(p.fetch_ratio - ref_fetch)
        points.append(
            PointVerdict(
                size_mb=p.cache_mb,
                pirate_fetch_ratio=p.fetch_ratio,
                reference_fetch_ratio=ref_fetch,
                fetch_divergence=fetch_div,
                pirate_miss_ratio=p.miss_ratio,
                reference_miss_ratio=ref_miss,
                miss_divergence=abs(p.miss_ratio - ref_miss),
                cpi=p.cpi,
                cpi_delta=p.cpi - baseline_cpi,
                trusted=p.valid,
                conforms=p.valid and fetch_div <= bound,
            )
        )
    return ConformanceReport(
        benchmark=diff.benchmark,
        bound=bound,
        points=points,
        baseline_fetch_ratio=diff.baseline.target.fetch_ratio,
        baseline_cpi=baseline_cpi,
    )


@dataclass
class SuiteReport:
    """The conformance oracle's verdict over a set of workloads."""

    tier: str
    seed: int
    bound: float
    reports: list[ConformanceReport] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.reports) and all(r.passed for r in self.reports)

    @property
    def worst_divergence(self) -> float:
        return max((r.worst_divergence for r in self.reports), default=0.0)

    @property
    def failing(self) -> list[str]:
        return [r.benchmark for r in self.reports if not r.passed]

    def by_name(self, name: str) -> ConformanceReport:
        for r in self.reports:
            if r.benchmark == name:
                return r
        raise KeyError(name)

    def to_dict(self) -> dict:
        return {
            "tier": self.tier,
            "seed": self.seed,
            "bound": self.bound,
            "passed": self.passed,
            "worst_divergence": self.worst_divergence,
            "failing": self.failing,
            "benchmarks": [r.to_dict() for r in self.reports],
        }

    def write_json(self, path: str | Path) -> None:
        """Write the report as a JSON artifact (atomic enough for CI)."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")

    def summary_line(self) -> str:
        return (
            f"suite: {'PASS' if self.passed else 'FAIL'} — "
            f"{len(self.reports) - len(self.failing)}/{len(self.reports)} benchmarks "
            f"conform, worst divergence {self.worst_divergence * 100:.3f}%"
            + (f", failing: {', '.join(self.failing)}" if self.failing else "")
        )

    def format(self) -> str:
        out = [
            f"Conformance — pirated cache vs reference simulator "
            f"(tier={self.tier}, bound={self.bound * 100:.1f}%)"
        ]
        for r in self.reports:
            out.append(r.format())
        out.append(self.summary_line())
        return "\n".join(out)


def validate_suite(
    names: list[str],
    tier: ValidationTier,
    *,
    config: MachineConfig | None = None,
    seed: int = 0,
    workers: int = 0,
    telemetry=None,
    echo=None,
) -> SuiteReport:
    """Run the conformance oracle over ``names`` at ``tier``.

    ``workers`` fans each benchmark's per-size pirate runs over a process
    pool; the report is identical for any worker count (a metamorphic
    invariant under test in ``tests/test_validation_props.py``).  ``echo``
    (when given) receives each benchmark's formatted report as it lands,
    so long suites stream progress instead of going silent.
    """
    tel = ensure_telemetry(telemetry)
    suite = SuiteReport(tier=tier.name, seed=seed, bound=tier.bound)
    with tel.span("validate_suite", tier=tier.name, benchmarks=len(names)):
        for name in names:
            diff = differential_compare(
                name, tier, config=config, seed=seed, workers=workers, telemetry=tel
            )
            report = conformance_report(diff, tier.bound)
            suite.reports.append(report)
            tel.count("validation_benchmarks_total")
            if not report.passed:
                tel.count("validation_failures_total")
                tel.event(
                    "conformance_failure",
                    benchmark=name,
                    worst_divergence=report.worst_divergence,
                )
            for _ in report.violations:
                tel.count("validation_violations_total")
            if echo is not None:
                echo(report.format())
    return suite
