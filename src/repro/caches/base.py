"""Shared datatypes for the cache models.

The simulator counts events in plain integer fields (no numpy scalars) because
the per-access loop is the hot path; everything here is designed to be cheap
to update and cheap to snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class AccessResult:
    """Outcome of one access to a single cache.

    ``hit`` is True when the line was present.  On a miss that caused an
    eviction, ``victim_tag`` holds the evicted line's tag (``None`` when an
    invalid way was filled) and ``victim_dirty`` whether it needs writeback.
    """

    hit: bool
    victim_tag: int | None = None
    victim_dirty: bool = False


@dataclass
class CacheLevelStats:
    """Aggregate counters for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    fills: int = 0
    invalidations: int = 0

    def snapshot(self) -> "CacheLevelStats":
        """Copy of the current counter values."""
        return CacheLevelStats(
            accesses=self.accesses,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            writebacks=self.writebacks,
            fills=self.fills,
            invalidations=self.invalidations,
        )

    def delta(self, earlier: "CacheLevelStats") -> "CacheLevelStats":
        """Counter increments since ``earlier`` (a prior :meth:`snapshot`)."""
        return CacheLevelStats(
            accesses=self.accesses - earlier.accesses,
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            writebacks=self.writebacks - earlier.writebacks,
            fills=self.fills - earlier.fills,
            invalidations=self.invalidations - earlier.invalidations,
        )

    @property
    def miss_ratio(self) -> float:
        """Misses per access (0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class CoreMemStats:
    """Per-core memory-system event counts for one chunk of execution.

    This is what the hierarchy hands back to the core timing model and what
    the simulated performance counters expose.  ``l3_fetches`` counts every
    line brought on-chip on this core's behalf (demand misses *and* prefetch
    fills), matching the paper's *fetch* definition (§I-B); ``l3_misses``
    counts demand misses only.
    """

    instructions: int = 0
    mem_accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    l3_misses: int = 0
    l3_fetches: int = 0
    prefetch_fills: int = 0
    prefetch_useless: int = 0
    dram_writeback_lines: int = 0

    def add(self, other: "CoreMemStats") -> None:
        """Accumulate another chunk's counts into this one."""
        self.instructions += other.instructions
        self.mem_accesses += other.mem_accesses
        self.l1_hits += other.l1_hits
        self.l2_hits += other.l2_hits
        self.l3_hits += other.l3_hits
        self.l3_misses += other.l3_misses
        self.l3_fetches += other.l3_fetches
        self.prefetch_fills += other.prefetch_fills
        self.prefetch_useless += other.prefetch_useless
        self.dram_writeback_lines += other.dram_writeback_lines

    @property
    def fetch_ratio(self) -> float:
        """Fetches per memory access — the paper's headline metric."""
        return self.l3_fetches / self.mem_accesses if self.mem_accesses else 0.0

    @property
    def miss_ratio(self) -> float:
        """Demand L3 misses per memory access."""
        return self.l3_misses / self.mem_accesses if self.mem_accesses else 0.0

    @property
    def dram_lines(self) -> int:
        """Total lines moved over the off-chip interface (fills + writebacks)."""
        return self.l3_fetches + self.dram_writeback_lines
