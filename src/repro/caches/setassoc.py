"""Set-associative cache models with pluggable replacement policies.

This module is the innermost loop of every experiment, so it is written for
speed first:

* the primitive operation is :meth:`SetAssocCache._access_code`, which
  returns a small int (``HIT``/``MISS_FREE``/``MISS_CLEAN``/``MISS_DIRTY``)
  and never allocates; the evicted tag is published via ``self.victim_tag``,
* membership tests use ``tag in tags`` (a C-level scan) before ``list.index``
  so cache misses never raise/handle exceptions,
* tags per set live in a plain way-indexed Python list, dirty bits and policy
  metadata are per-set integers,
* tree-PLRU state transitions are precomputed into lookup tables,
* statistics are plain int attributes; :attr:`SetAssocCache.stats` builds a
  :class:`~repro.caches.base.CacheLevelStats` view on demand.

The friendly :meth:`SetAssocCache.access` wrapper (returning
:class:`~repro.caches.base.AccessResult`) exists for tests and diagnostics;
the hierarchy uses the code protocol directly.

Policies:

``LRUCache``
    True least-recently-used, modelled as a recency list per set (§II-B1's
    stack model, Fig. 3).
``NRUCache``
    The Nehalem shared-L3 policy from §II-B2: one *accessed bit* per line;
    eviction takes the first line (in way order) with an unset bit; when
    setting a bit would leave every bit set, all other bits are cleared.
``PLRUCache``
    Tree pseudo-LRU (the paper's L1/L2 policy, Table I).
``RandomCache``
    Random victim; a degenerate baseline for tests.
"""

from __future__ import annotations

import numpy as np

from ..config import CacheConfig
from ..errors import SimulationError
from ..rng import make_rng
from .base import AccessResult, CacheLevelStats

#: Access-code protocol returned by ``_access_code``/``_fill_code``.
HIT = 0
MISS_FREE = 1  # miss that filled an invalid way (no eviction)
MISS_CLEAN = 2  # miss that evicted a clean line (victim_tag valid)
MISS_DIRTY = 3  # miss that evicted a dirty line (victim_tag valid)


class SetAssocCache:
    """Common storage and bookkeeping; subclasses provide victim choice."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.ways
        self.set_mask = self.num_sets - 1
        self.tag_shift = self.num_sets.bit_length() - 1
        #: per-set, way-indexed tag list; ``None`` marks an invalid way.
        self._tags: list[list[int | None]] = [
            [None] * self.ways for _ in range(self.num_sets)
        ]
        #: per-set dirty bitmask (bit w set ⇔ way w dirty).
        self._dirty: list[int] = [0] * self.num_sets
        #: per-set count of valid ways (skips the ``None in tags`` scan once full).
        self._nvalid: list[int] = [0] * self.num_sets
        #: tag evicted by the most recent MISS_CLEAN/MISS_DIRTY access.
        self.victim_tag: int | None = None
        # counters (plain ints on purpose — see module docstring)
        self.acc_count = 0
        self.hit_count = 0
        self.miss_count = 0
        self.evict_count = 0
        self.wb_count = 0
        self.fill_count = 0
        self.inval_count = 0

    # -- address helpers ----------------------------------------------------

    def split(self, line_addr: int) -> tuple[int, int]:
        """Map a line address to ``(set_index, tag)``."""
        return line_addr & self.set_mask, line_addr >> self.tag_shift

    def join(self, set_idx: int, tag: int) -> int:
        """Inverse of :meth:`split`."""
        return (tag << self.tag_shift) | set_idx

    # -- policy hooks (overridden per policy) --------------------------------

    def _touch(self, set_idx: int, way: int) -> None:
        """Update replacement metadata after an access to ``way``."""
        raise NotImplementedError

    def _victim(self, set_idx: int) -> int:
        """Choose the way to evict in a full set."""
        raise NotImplementedError

    def _reset_meta(self, set_idx: int, way: int) -> None:
        """Clear metadata for an invalidated way (default: nothing)."""

    # -- code-protocol primitives (hot path) ----------------------------------

    def _access_code(self, set_idx: int, tag: int, is_write: bool) -> int:
        """Demand access; fills on miss; returns HIT/MISS_* code."""
        self.acc_count += 1
        tags = self._tags[set_idx]
        if tag in tags:
            self.hit_count += 1
            way = tags.index(tag)
            if is_write:
                self._dirty[set_idx] |= 1 << way
            self._touch(set_idx, way)
            return HIT
        self.miss_count += 1
        return self._fill_slow(set_idx, tag, is_write, tags)

    def _fill_code(self, set_idx: int, tag: int, is_write: bool) -> int:
        """Insert without counting a demand access (prefetch fills).

        If the line is already present this only touches replacement state
        and returns HIT.
        """
        tags = self._tags[set_idx]
        if tag in tags:
            way = tags.index(tag)
            if is_write:
                self._dirty[set_idx] |= 1 << way
            self._touch(set_idx, way)
            return HIT
        return self._fill_slow(set_idx, tag, is_write, tags)

    def _fill_slow(
        self, set_idx: int, tag: int, is_write: bool, tags: list[int | None]
    ) -> int:
        code = MISS_FREE
        if self._nvalid[set_idx] < self.ways:
            way = tags.index(None)
            self._nvalid[set_idx] += 1
        else:
            way = self._victim(set_idx)
            self.victim_tag = tags[way]
            self.evict_count += 1
            if self._dirty[set_idx] & (1 << way):
                self.wb_count += 1
                code = MISS_DIRTY
            else:
                code = MISS_CLEAN
        tags[way] = tag
        if is_write:
            self._dirty[set_idx] |= 1 << way
        else:
            self._dirty[set_idx] &= ~(1 << way)
        self.fill_count += 1
        self._touch(set_idx, way)
        return code

    # -- friendly API ----------------------------------------------------------

    def access(self, set_idx: int, tag: int, is_write: bool = False) -> AccessResult:
        """Demand access returning a structured :class:`AccessResult`."""
        code = self._access_code(set_idx, tag, is_write)
        if code == HIT:
            return AccessResult(hit=True)
        if code == MISS_FREE:
            return AccessResult(hit=False)
        return AccessResult(hit=False, victim_tag=self.victim_tag, victim_dirty=code == MISS_DIRTY)

    def fill(self, set_idx: int, tag: int, is_write: bool = False) -> AccessResult:
        """Non-demand insert returning a structured :class:`AccessResult`."""
        code = self._fill_code(set_idx, tag, is_write)
        if code == HIT:
            return AccessResult(hit=True)
        if code == MISS_FREE:
            return AccessResult(hit=False)
        return AccessResult(hit=False, victim_tag=self.victim_tag, victim_dirty=code == MISS_DIRTY)

    def probe(self, set_idx: int, tag: int) -> int:
        """Way holding ``tag`` or -1; does not update replacement state."""
        tags = self._tags[set_idx]
        if tag in tags:
            return tags.index(tag)
        return -1

    def invalidate(self, set_idx: int, tag: int) -> tuple[bool, bool]:
        """Drop a line if present; returns ``(was_present, was_dirty)``."""
        tags = self._tags[set_idx]
        if tag not in tags:
            return False, False
        way = tags.index(tag)
        was_dirty = bool(self._dirty[set_idx] & (1 << way))
        tags[way] = None
        self._dirty[set_idx] &= ~(1 << way)
        self._nvalid[set_idx] -= 1
        self._reset_meta(set_idx, way)
        self.inval_count += 1
        return True, was_dirty

    def mark_dirty(self, set_idx: int, tag: int) -> bool:
        """Set the dirty bit of a resident line (write-back from below)."""
        way = self.probe(set_idx, tag)
        if way < 0:
            return False
        self._dirty[set_idx] |= 1 << way
        return True

    # -- statistics -------------------------------------------------------------

    @property
    def stats(self) -> CacheLevelStats:
        """Current counters as a :class:`CacheLevelStats` snapshot."""
        return CacheLevelStats(
            accesses=self.acc_count,
            hits=self.hit_count,
            misses=self.miss_count,
            evictions=self.evict_count,
            writebacks=self.wb_count,
            fills=self.fill_count,
            invalidations=self.inval_count,
        )

    # -- introspection --------------------------------------------------------

    def resident_tags(self, set_idx: int) -> list[int]:
        """Valid tags of a set, in way order (test/diagnostic helper)."""
        return [t for t in self._tags[set_idx] if t is not None]

    def occupancy(self) -> int:
        """Number of valid lines cache-wide."""
        return sum(self.ways - s.count(None) for s in self._tags)

    def resident_lines(self) -> set[int]:
        """All resident line addresses (reconstructed from set+tag)."""
        out: set[int] = set()
        for set_idx, tags in enumerate(self._tags):
            for tag in tags:
                if tag is not None:
                    out.add(self.join(set_idx, tag))
        return out

    def flush(self) -> None:
        """Invalidate everything and reset policy metadata."""
        for s in range(self.num_sets):
            self._tags[s] = [None] * self.ways
            self._dirty[s] = 0
            self._nvalid[s] = 0
        self._init_meta()

    def _init_meta(self) -> None:
        """(Re)build policy metadata; subclasses override."""


class LRUCache(SetAssocCache):
    """True LRU: per-set recency list of ways, MRU at the end."""

    def __init__(self, config: CacheConfig):
        super().__init__(config)
        self._init_meta()

    def _init_meta(self) -> None:
        self._recency: list[list[int]] = [
            list(range(self.ways)) for _ in range(self.num_sets)
        ]

    def _touch(self, set_idx: int, way: int) -> None:
        rec = self._recency[set_idx]
        rec.remove(way)
        rec.append(way)

    def _victim(self, set_idx: int) -> int:
        return self._recency[set_idx][0]

    def _access_code(self, set_idx: int, tag: int, is_write: bool) -> int:
        # hit path inlined (this cache runs the reference simulator's L3)
        self.acc_count += 1
        tags = self._tags[set_idx]
        if tag in tags:
            self.hit_count += 1
            way = tags.index(tag)
            if is_write:
                self._dirty[set_idx] |= 1 << way
            rec = self._recency[set_idx]
            rec.remove(way)
            rec.append(way)
            return HIT
        self.miss_count += 1
        return self._fill_slow(set_idx, tag, is_write, tags)

    def recency_order(self, set_idx: int) -> list[int | None]:
        """Tags from LRU to MRU for one set (Fig. 3 stack view)."""
        tags = self._tags[set_idx]
        return [tags[w] for w in self._recency[set_idx]]


class NRUCache(SetAssocCache):
    """Nehalem accessed-bit policy (§II-B2).

    Each line carries an *accessed* bit.  Any access (hit or fill) sets the
    line's bit; if that would leave every way's bit set, all *other* bits are
    cleared, so exactly one bit remains set.  Eviction scans ways in index
    order and takes the first line whose bit is clear.
    """

    def __init__(self, config: CacheConfig):
        super().__init__(config)
        self._full_mask = (1 << self.ways) - 1
        self._init_meta()

    def _init_meta(self) -> None:
        self._acc: list[int] = [0] * self.num_sets

    def _touch(self, set_idx: int, way: int) -> None:
        acc = self._acc
        bits = acc[set_idx] | (1 << way)
        if bits == self._full_mask:
            bits = 1 << way
        acc[set_idx] = bits

    def _victim(self, set_idx: int) -> int:
        bits = self._acc[set_idx]
        # index of the lowest zero bit = index of lowest set bit of ~bits
        inv = ~bits & self._full_mask
        if inv:
            return (inv & -inv).bit_length() - 1
        # unreachable while _touch maintains its invariant, except 1-way sets
        if self.ways == 1:
            return 0
        raise SimulationError("NRU set with every accessed bit set")

    def _reset_meta(self, set_idx: int, way: int) -> None:
        self._acc[set_idx] &= ~(1 << way)

    def _access_code(self, set_idx: int, tag: int, is_write: bool) -> int:
        # hit path inlined (this cache is the machine's shared L3 and takes
        # every Pirate sweep access)
        self.acc_count += 1
        tags = self._tags[set_idx]
        if tag in tags:
            self.hit_count += 1
            way = tags.index(tag)
            if is_write:
                self._dirty[set_idx] |= 1 << way
            acc = self._acc
            bits = acc[set_idx] | (1 << way)
            if bits == self._full_mask:
                bits = 1 << way
            acc[set_idx] = bits
            return HIT
        self.miss_count += 1
        return self._fill_slow(set_idx, tag, is_write, tags)

    def accessed_bits(self, set_idx: int) -> int:
        """Raw accessed-bit mask of a set (diagnostics/tests)."""
        return self._acc[set_idx]


def _build_plru_tables(ways: int) -> tuple[list[int], list[int]]:
    """Precompute tree-PLRU transition tables for a power-of-two way count.

    Returns ``(touch, victim)``: ``touch[(bits << log2(ways)) | way]`` is the
    tree state after touching ``way``; ``victim[bits]`` is the pseudo-LRU way.
    Tree nodes are stored as a bitmask; bit value 0 means "the LRU side is
    the left subtree".
    """
    levels = ways.bit_length() - 1
    nstates = 1 << max(ways - 1, 0)
    touch = [0] * (nstates * ways)
    victim = [0] * nstates
    for bits in range(nstates):
        node = 0
        way = 0
        for _ in range(levels):
            branch = (bits >> node) & 1
            way = (way << 1) | branch
            node = 2 * node + 1 + branch
        victim[bits] = way
        for w in range(ways):
            b = bits
            node = 0
            for level in range(levels):
                branch = (w >> (levels - 1 - level)) & 1
                if branch:
                    b &= ~(1 << node)
                    node = 2 * node + 2
                else:
                    b |= 1 << node
                    node = 2 * node + 1
            touch[(bits << levels) | w] = b
    return touch, victim


class PLRUCache(SetAssocCache):
    """Tree pseudo-LRU over a power-of-two associativity, table-driven."""

    _tables: dict[int, tuple[list[int], list[int]]] = {}

    def __init__(self, config: CacheConfig):
        if config.ways & (config.ways - 1):
            raise SimulationError("tree-PLRU requires a power-of-two way count")
        super().__init__(config)
        if config.ways not in PLRUCache._tables:
            PLRUCache._tables[config.ways] = _build_plru_tables(config.ways)
        self._touch_tab, self._victim_tab = PLRUCache._tables[config.ways]
        self._levels = config.ways.bit_length() - 1
        self._init_meta()

    def _init_meta(self) -> None:
        self._tree: list[int] = [0] * self.num_sets

    def _touch(self, set_idx: int, way: int) -> None:
        tree = self._tree
        tree[set_idx] = self._touch_tab[(tree[set_idx] << self._levels) | way]

    def _victim(self, set_idx: int) -> int:
        return self._victim_tab[self._tree[set_idx]]


class RandomCache(SetAssocCache):
    """Random replacement; deterministic given its seed."""

    def __init__(self, config: CacheConfig, seed: int | np.random.Generator | None = 0):
        super().__init__(config)
        self._rng = make_rng(seed)

    def _touch(self, set_idx: int, way: int) -> None:
        pass

    def _victim(self, set_idx: int) -> int:
        return int(self._rng.integers(0, self.ways))


def make_cache(
    config: CacheConfig, seed: int | np.random.Generator | None = 0
) -> SetAssocCache:
    """Instantiate the cache model named by ``config.policy``."""
    if config.policy == "lru":
        return LRUCache(config)
    if config.policy == "nru":
        return NRUCache(config)
    if config.policy == "plru":
        return PLRUCache(config)
    if config.policy == "random":
        return RandomCache(config, seed)
    raise SimulationError(f"unhandled policy {config.policy!r}")
