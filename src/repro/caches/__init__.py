"""Set-associative cache models, replacement policies and the Table I hierarchy.

This package is the memory-system substrate the Cache Pirating technique runs
on: single caches (:mod:`repro.caches.setassoc`), the Nehalem accessed-bit
replacement policy the paper describes in §II-B2 (:mod:`repro.caches.policies`),
a per-core stream prefetcher (:mod:`repro.caches.prefetch`) and the full
L1/L2/L3 inclusive hierarchy (:mod:`repro.caches.hierarchy`).
"""

from .base import AccessResult, CacheLevelStats, CoreMemStats
from .setassoc import LRUCache, NRUCache, PLRUCache, RandomCache, SetAssocCache, make_cache
from .prefetch import StreamPrefetcher
from .hierarchy import CacheHierarchy

__all__ = [
    "AccessResult",
    "CacheLevelStats",
    "CoreMemStats",
    "SetAssocCache",
    "LRUCache",
    "NRUCache",
    "PLRUCache",
    "RandomCache",
    "make_cache",
    "StreamPrefetcher",
    "CacheHierarchy",
]
