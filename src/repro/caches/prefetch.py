"""Per-core hardware stream prefetcher model.

The paper (§I-B) distinguishes *fetches* (lines brought from memory including
prefetches) from *misses* (demand misses) and shows benchmarks, e.g. 470.lbm,
with an 8x fetch-to-miss gap.  This module models the mechanism that creates
that gap: an ascending unit-stride stream detector that observes every demand
access reaching the L3 (i.e. every L2 miss, including ones that hit in L3 on
previously prefetched lines — real prefetchers train below the level they fill)
and, once a stream is confirmed, keeps a prefetch frontier ``degree`` lines
ahead of the demand stream.

The machine disables the prefetcher via ``MachineConfig.prefetch_enabled``
(used by the Fig. 9 experiment and the reference-simulator methodology in
§III-B1, where the authors disabled prefetching for validation).
"""

from __future__ import annotations


class _Stream:
    """One tracked stream: next expected demand line and prefetch frontier.

    A plain ``__slots__`` class mutated in place — stream entries are recycled
    on table eviction so the (hot) allocate path performs no allocation in
    steady state.
    """

    __slots__ = ("next_line", "count", "frontier")

    def __init__(self, next_line: int, count: int, frontier: int):
        self.next_line = next_line
        self.count = count
        self.frontier = frontier


class StreamPrefetcher:
    """Ascending unit-stride stream detector with a small stream table.

    Parameters
    ----------
    trigger:
        Consecutive +1-line demand accesses required before prefetching.
    degree:
        How far (in lines) the prefetch frontier runs ahead of demand.
    table_size:
        Number of concurrently tracked streams (FIFO replacement).
    """

    def __init__(self, trigger: int = 2, degree: int = 4, table_size: int = 16):
        if trigger < 1:
            raise ValueError("trigger must be >= 1")
        if degree < 1:
            raise ValueError("degree must be >= 1")
        if table_size < 1:
            raise ValueError("table_size must be >= 1")
        self.trigger = trigger
        self.degree = degree
        self.table_size = table_size
        #: streams keyed by the line address that would continue them.
        self._by_next: dict[int, _Stream] = {}
        #: insertion order for FIFO replacement (stream identity = object).
        self._order: list[_Stream] = []
        self.issued = 0
        self.streams_started = 0

    def observe(self, line: int) -> list[int]:
        """Feed one demand access; return line addresses to prefetch now."""
        stream = self._by_next.pop(line, None)
        if stream is None:
            self._allocate(line)
            return []
        stream.next_line = line + 1
        stream.count += 1
        self._by_next[stream.next_line] = stream
        if stream.count < self.trigger:
            return []
        target = line + self.degree
        if stream.frontier < line:
            stream.frontier = line
        if target <= stream.frontier:
            return []
        out = list(range(stream.frontier + 1, target + 1))
        stream.frontier = target
        self.issued += len(out)
        return out

    def _allocate(self, line: int) -> None:
        if len(self._order) >= self.table_size:
            # recycle the oldest entry in place (no allocation)
            stream = self._order.pop(0)
            # the stream may have been displaced from _by_next by a collision
            if self._by_next.get(stream.next_line) is stream:
                del self._by_next[stream.next_line]
            stream.next_line = line + 1
            stream.count = 1
            stream.frontier = line
        else:
            stream = _Stream(line + 1, 1, line)
        self._order.append(stream)
        self._by_next[stream.next_line] = stream
        self.streams_started += 1

    def reset(self) -> None:
        """Forget all streams (used across measurement-interval boundaries)."""
        self._by_next.clear()
        self._order.clear()
