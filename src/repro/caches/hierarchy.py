"""The full Table I cache hierarchy: private L1/L2, shared inclusive L3.

One :class:`CacheHierarchy` instance is the memory system of the simulated
machine (``repro.hardware``) *and* the engine of the trace-driven reference
simulator (``repro.reference``) — the paper validates the former against the
latter, so both intentionally share this implementation with different
configurations driving them.

Semantics modelled (all load-bearing for the paper's experiments):

* write-allocate, write-back at every level,
* non-inclusive private L2 (dirty L1 victims are installed into L2),
* **inclusive shared L3**: evicting an L3 line back-invalidates every core's
  L1/L2 copy.  This is why stealing L3 ways also shrinks the Target's
  effective private capacity on Nehalem, and the simulation keeps it,
* demand fetches vs prefetch fetches counted separately per core (§I-B),
* a per-core stream prefetcher training on L2 misses and filling the L3.

The per-access loop is the hottest code in the library.  Two execution
engines share it:

* the scalar loops below — the caches' int-code protocol (no allocation
  per access), pre-bound locals, inlined set/tag splitting;
* the vectorized kernels in :mod:`repro.kernels` — numpy batch kernels
  that are bit-identical to the scalar loops.

:meth:`access_chunk` dispatches per chunk based on ``MachineConfig.kernel``:

``scalar``
    always the scalar loops (and plain scalar cache classes);
``vector``
    the kernels wherever they apply — the L3-only kernel for
    private-level-bypass chunks, the pipelined kernel for full-path chunks
    (prefetcher included; it runs unmodified inside the L3 stage);
``auto`` (default)
    the L3-only kernel for bypass-private chunks big enough to amortize
    the batch setup (with a scalar bail-out for set-skewed chunks where
    round decomposition degenerates); for full-path chunks an online cost
    router: both engines are bit-identical, so the dispatcher measures
    their per-access wall time and runs whichever is currently cheaper,
    re-probing the loser periodically to track workload phase changes;
``batch``
    ``vector`` plus the C lowering of the sequential L3 paths
    (:mod:`repro.kernels.cext`): bypass chunks run the in-order C loop
    (no decomposition, no bail-outs) and the pipelined kernel's scalar
    L3 stage is lowered too.  Falls back to ``vector`` behaviour when no
    C compiler is available.  Still bit-identical.

``access_chunk(..., bypass_private=True)`` additionally skips the private
levels — exact for streaming threads whose reuse distance exceeds the L2
(the Pirate; see ``repro.core.pirate``) and used only there.

Set sampling (``MachineConfig.sample_sets = N > 1``) simulates only every
``N``-th L3 set and rescales each chunk's L3-derived counters by ``N``;
private levels stay exact.  See ``DESIGN.md`` for the error model.

Above the kernels sits a coarser dispatch: the harness layer's *engine
tiers* (:data:`ENGINE_TIERS`).  ``measure`` runs the co-simulation through
the kernels above; ``surrogate`` skips simulation entirely and predicts the
curve from a one-pass reuse-distance profile (:mod:`repro.surrogate`);
``auto`` answers each point analytically and escalates the model's
low-confidence sizes back to the measured tier.  See DESIGN.md §9.
"""

from __future__ import annotations

from itertools import repeat
from time import perf_counter

import numpy as np

from ..config import MachineConfig
from ..errors import ConfigError
from .base import CoreMemStats
from .prefetch import StreamPrefetcher
from .setassoc import MISS_DIRTY, SetAssocCache, make_cache

#: ``auto`` kernel mode only batches chunks at least this long; below it the
#: numpy setup costs more than the scalar loop saves.
AUTO_MIN_CHUNK = 64

#: Adaptive segmentation of full-path chunks handed to the pipelined kernel.
#: The kernel's optimistic L1/L2 stages roll back when an inclusive-L3
#: eviction hits a line resident in this core's private caches; a rollback
#: re-runs its whole segment, so segments shrink (``>> 1``) after a rollback
#: and grow (``<< 1``) after a clean segment.  Splitting a chunk is exact:
#: processing is sequential either way.
SEG_INIT = 512
SEG_MIN = 64
SEG_MAX = 4096

#: ``auto`` full-path routing: scalar walk vs pipelined kernel is purely a
#: speed decision (they are bit-identical), made per core from an EWMA of
#: each engine's measured seconds per access.  The currently-losing engine
#: is re-run every AUTO_PROBE_EVERY chunks so its estimate stays current.
AUTO_PROBE_EVERY = 32
AUTO_COST_DECAY = 0.5  # EWMA weight of the newest observation

#: Engine tiers the harness layer dispatches between (DESIGN.md §9):
#: ``measure`` co-runs Target and Pirate on the simulated machine,
#: ``surrogate`` predicts curves from a reuse-distance profile, ``auto``
#: predicts first and escalates low-confidence points to ``measure``.
ENGINE_TIERS = ("measure", "surrogate", "auto")


def resolve_engine(name: str) -> str:
    """Validate an engine-tier name (:class:`~repro.errors.ConfigError` on
    an unknown tier); returns the name unchanged."""
    if name not in ENGINE_TIERS:
        raise ConfigError(
            f"unknown engine {name!r}: choose from {', '.join(ENGINE_TIERS)}"
        )
    return name

#: Shared auto-router cost state, keyed by the sweep's (machine content,
#: workload) token — see :meth:`CacheHierarchy.adopt_router_state`.  Bounded:
#: cleared wholesale when it outgrows _ROUTER_CACHE_MAX distinct sweeps.
_ROUTER_CACHE: dict[str, tuple[list, list]] = {}
_ROUTER_CACHE_MAX = 64

_kernels_mod = None


def _kernels():
    """Import :mod:`repro.kernels` lazily.

    The kernels package imports the cache models, and this module is pulled
    in by ``repro.caches.__init__`` — a module-level import here would make
    ``import repro.kernels`` (e.g. by the kernel test suite) hit a
    partially-initialized module.  Deferring to first hierarchy
    construction breaks the cycle for both import orders.
    """
    global _kernels_mod
    if _kernels_mod is None:
        from .. import kernels

        _kernels_mod = kernels
    return _kernels_mod


class CacheHierarchy:
    """Private L1/L2 per core plus one shared L3."""

    def __init__(self, config: MachineConfig, seed: int = 0):
        self.config = config
        n = config.num_cores
        self._kernel = config.kernel
        if self._kernel == "scalar":
            self._kern = None
            self.l1: list[SetAssocCache] = [
                make_cache(config.l1, seed) for _ in range(n)
            ]
            self.l2: list[SetAssocCache] = [
                make_cache(config.l2, seed) for _ in range(n)
            ]
            self.l3: SetAssocCache = make_cache(config.l3, seed)
        else:
            # SoA caches at every level feed the batch kernels.  Uncovered
            # policies (random; NRU way counts outside the mask math)
            # silently stay scalar, which simply disables the corresponding
            # kernel.
            kern = self._kern = _kernels()
            self.l1 = [
                kern.make_vec_cache(config.l1) or make_cache(config.l1, seed)
                for _ in range(n)
            ]
            self.l2 = [
                kern.make_vec_cache(config.l2) or make_cache(config.l2, seed)
                for _ in range(n)
            ]
            self.l3 = kern.make_vec_cache(config.l3) or make_cache(config.l3, seed)
        self.prefetchers: list[StreamPrefetcher | None] = [
            StreamPrefetcher(config.prefetch_trigger, config.prefetch_degree)
            if config.prefetch_enabled
            else None
            for _ in range(n)
        ]
        #: cumulative per-core stats since construction.
        self.totals: list[CoreMemStats] = [CoreMemStats() for _ in range(n)]
        #: L3 line -> core that fetched it; lets back-invalidation visit one
        #: core instead of all (exact for disjoint per-thread address spaces,
        #: see ``MachineConfig.private_data``).
        self._owner: dict[int, int] = {}
        self._private_data: bool = config.private_data
        #: per-core "has ever filled its private caches" flag: a core that
        #: only ran bypass-private chunks (the Pirate) has empty L1/L2, so
        #: back-invalidating its victims can skip the invalidate scans
        self._priv_filled: list[bool] = [False] * n
        #: set-sampling step N (1 = exact) and the line-address mask that
        #: selects sampled lines (``line & mask == 0``; the mask covers the
        #: low bits of the L3 set index).
        self._sample_step: int = config.sample_sets
        self._sample_mask: int = config.sample_sets - 1
        #: per-core pipelined-kernel segment length (adaptive): halved when a
        #: segment rolls back, doubled while segments stay clean, so the cost
        #: of a back-invalidation rollback is bounded by one small segment
        self._seg_len: list[int] = [SEG_INIT] * n
        #: set by the pipelined kernel when a chunk ends in a rollback
        self._rolled_back = False
        #: per-core measured full-path engine cost (seconds/access EWMA),
        #: indexed [scalar, kernel]; None until first measured
        self._full_cost: list[list[float | None]] = [[None, None] for _ in range(n)]
        self._full_tick: list[int] = [0] * n
        #: paired cost probes run by the auto router (observability)
        self.router_probes = 0
        #: kernel bail-outs to the scalar path, by stage ("l3" = bypass
        #: chunks, "full" = pipelined segments); surfaced as the
        #: ``kernel_bailouts_total`` telemetry counter by the harness
        self.kernel_bailouts = {"l3": 0, "full": 0}
        #: C lowering of the sequential L3 paths (kernel mode ``batch``
        #: only; None when unavailable — pure-Python fallback)
        self._cext = None
        if self._kernel == "batch" and isinstance(
            self.l3, self._kern.VecSetAssocCache
        ):
            self._cext = self._kern.cext.stream_for(self.l3)

    def adopt_router_state(self, key: str) -> None:
        """Share the ``auto`` router's engine-cost state under ``key``.

        Every point of a sweep runs the same target workload on the same
        machine geometry, so the scalar-vs-kernel cost comparison the
        full-path router makes is common to all points executed by this
        process.  Adopting a shared state (keyed by the sweep's machine
        content + target token) lets one paired probe serve the whole
        sweep instead of re-probing per point.  Purely a speed decision:
        both engines are bit-identical, so sharing can never change a
        result.
        """
        state = _ROUTER_CACHE.get(key)
        if state is not None and len(state[0]) == len(self._full_cost):
            self._full_cost, self._full_tick = state
            return
        if len(_ROUTER_CACHE) >= _ROUTER_CACHE_MAX:
            _ROUTER_CACHE.clear()
        _ROUTER_CACHE[key] = (self._full_cost, self._full_tick)

    # -- single access (diagnostics / tiny tests) ----------------------------

    def access(self, core: int, line: int, is_write: bool = False) -> CoreMemStats:
        """Run one demand access through the hierarchy; returns its stats."""
        return self.access_chunk(core, [line], [is_write] if is_write else None)

    # -- hot path --------------------------------------------------------------

    def access_chunk(
        self,
        core: int,
        lines,
        writes=None,
        bypass_private: bool = False,
    ) -> CoreMemStats:
        """Run a sequence of demand accesses for ``core``.

        ``lines`` is a sequence of line addresses; ``writes`` is an optional
        parallel boolean sequence (all-read when omitted).  ndarray inputs
        are handed to the vectorized kernels as-is and converted to lists
        only if the chunk actually takes a scalar path.  Returns the chunk's
        :class:`CoreMemStats` (L3 counters rescaled under set sampling) and
        folds it into :attr:`totals`.
        """
        if bypass_private:
            stats = self._dispatch_l3_only(core, lines, writes)
        else:
            if len(lines):
                self._priv_filled[core] = True
            stats = self._dispatch_full(core, lines, writes)
        if self._sample_mask:
            s = self._sample_step
            stats.l3_hits *= s
            stats.l3_misses *= s
            stats.l3_fetches *= s
            stats.prefetch_fills *= s
            stats.dram_writeback_lines *= s
        self.totals[core].add(stats)
        return stats

    # -- kernel dispatch ---------------------------------------------------------

    def _dispatch_l3_only(self, core: int, lines, writes) -> CoreMemStats:
        mode = self._kernel
        if mode != "scalar" and isinstance(self.l3, self._kern.VecSetAssocCache):
            force = mode in ("vector", "batch")
            if force or len(lines) >= AUTO_MIN_CHUNK:
                arr = np.asarray(lines, dtype=np.int64)
                warr = None if writes is None else np.asarray(writes, dtype=bool)
                if self._cext is not None:
                    # batch mode with the C lowering loaded: the in-order C
                    # loop needs no round decomposition and never bails
                    return self._kern.run_l3_chunk_cext(
                        self, core, arr, warr, self._cext
                    )
                stats = self._kern.run_l3_chunk(self, core, arr, warr, force=force)
                if stats is not None:
                    return stats
                self.kernel_bailouts["l3"] += 1
        if isinstance(lines, np.ndarray):
            lines = lines.tolist()
        if isinstance(writes, np.ndarray):
            writes = writes.tolist()
        return self._access_chunk_l3_only(core, lines, writes)

    def _dispatch_full(self, core: int, lines, writes) -> CoreMemStats:
        mode = self._kernel
        vec = self._kern.VecSetAssocCache if mode != "scalar" else None
        if (
            vec is not None
            and isinstance(self.l1[core], vec)
            and isinstance(self.l2[core], vec)
            and isinstance(self.l3, vec)
        ):
            if mode in ("vector", "batch"):
                arr = np.asarray(lines, dtype=np.int64)
                warr = None if writes is None else np.asarray(writes, dtype=bool)
                return self._run_full_segmented(core, arr, warr, True)
            if len(lines) >= AUTO_MIN_CHUNK:
                return self._route_full_auto(core, lines, writes)
        if isinstance(lines, np.ndarray):
            lines = lines.tolist()
        if isinstance(writes, np.ndarray):
            writes = writes.tolist()
        return self._access_chunk_full(core, lines, writes)

    def _route_full_auto(self, core: int, lines, writes) -> CoreMemStats:
        """``auto`` full-path routing by measured per-access cost.

        The scalar walk and the pipelined kernel produce identical stats and
        cache state, so the choice between them can never change a result —
        the router just runs whichever engine's seconds-per-access EWMA is
        currently lower.  Estimates come only from *paired probes*: every
        :data:`AUTO_PROBE_EVERY` chunks the chunk is split in half and each
        engine runs one half, so both costs are measured on the same
        workload phase (engine costs swing several-fold between e.g. a
        Pirate-resize miss storm and steady-state hits, which would make
        timings taken on different chunks incomparable).  The half order
        alternates between probes to cancel any first-half bias.  All other
        chunks run the current winner, untimed.
        """
        cost = self._full_cost[core]
        tick = self._full_tick[core]
        self._full_tick[core] = tick + 1
        n = len(lines)
        need = cost[0] is None or cost[1] is None
        if (need or tick % AUTO_PROBE_EVERY == 0) and n >= 2 * AUTO_MIN_CHUNK:
            self.router_probes += 1
            arr = np.asarray(lines, dtype=np.int64)
            warr = None if writes is None else np.asarray(writes, dtype=bool)
            mid = n >> 1
            kernel_first = bool(tick & 1)
            stats = None
            for h, (i, j) in enumerate(((0, mid), (mid, n))):
                use_kernel = (h == 0) == kernel_first
                t0 = perf_counter()
                if use_kernel:
                    st = self._run_full_segmented(
                        core, arr[i:j], None if warr is None else warr[i:j], False
                    )
                else:
                    st = self._access_chunk_full(
                        core,
                        arr[i:j].tolist(),
                        None if warr is None else warr[i:j].tolist(),
                    )
                dt = (perf_counter() - t0) / (j - i)
                slot = 1 if use_kernel else 0
                prev = cost[slot]
                cost[slot] = (
                    dt if prev is None else prev + AUTO_COST_DECAY * (dt - prev)
                )
                if stats is None:
                    stats = st
                else:
                    stats.add(st)
            return stats
        if cost[1] is not None and (cost[0] is None or cost[1] < cost[0]):
            arr = np.asarray(lines, dtype=np.int64)
            warr = None if writes is None else np.asarray(writes, dtype=bool)
            return self._run_full_segmented(core, arr, warr, False)
        if isinstance(lines, np.ndarray):
            lines = lines.tolist()
        if isinstance(writes, np.ndarray):
            writes = writes.tolist()
        return self._access_chunk_full(core, lines, writes)

    def _run_full_segmented(self, core: int, arr, warr, force: bool) -> CoreMemStats:
        """Feed a full-path chunk to the pipelined kernel in adaptive segments."""
        run = self._kern.run_full_chunk
        n = len(arr)
        seg = self._seg_len[core]
        total = None
        i = 0
        while i < n:
            j = min(i + seg, n)
            self._rolled_back = False
            stats = run(
                self,
                core,
                arr[i:j],
                None if warr is None else warr[i:j],
                force=force,
            )
            if stats is None:
                # auto-mode skew bail: this segment runs scalar, the rest of
                # the chunk still gets the kernel
                self.kernel_bailouts["full"] += 1
                stats = self._access_chunk_full(
                    core,
                    arr[i:j].tolist(),
                    None if warr is None else warr[i:j].tolist(),
                )
            elif self._rolled_back:
                seg = max(SEG_MIN, seg >> 1)
            elif j - i >= seg:
                seg = min(SEG_MAX, seg << 1)
            if total is None:
                total = stats
            else:
                total.add(stats)
            i = j
        self._seg_len[core] = seg
        return total

    # -- scalar engines ----------------------------------------------------------

    def _access_chunk_full(self, core: int, lines, writes) -> CoreMemStats:
        l1 = self.l1[core]
        l2 = self.l2[core]
        l3 = self.l3
        pf = self.prefetchers[core]

        l1_code = l1._access_code
        l2_code = l2._access_code
        l3_code = l3._access_code
        l3_fill = l3._fill_code
        l3_probe = l3.probe
        pf_observe = pf.observe if pf is not None else None
        owner = self._owner
        smask = self._sample_mask

        m1, b1 = l1.set_mask, l1.tag_shift
        m2, b2 = l2.set_mask, l2.tag_shift
        m3, b3 = l3.set_mask, l3.tag_shift

        stats = CoreMemStats()
        stats.mem_accesses = len(lines)
        l1_hits = 0
        l2_hits = 0
        l3_hits = 0
        l3_misses = 0
        l3_fetches = 0
        pf_fills = 0
        wb_lines = 0

        writes_it = repeat(False) if writes is None else writes
        for line, w in zip(lines, writes_it):
            c1 = l1_code(line & m1, line >> b1, w)
            if c1 == 0:  # HIT
                l1_hits += 1
                continue
            if c1 == 3:  # MISS_DIRTY: install the dirty L1 victim into L2
                wb_lines += self._install_dirty_l2(core, l1.join(line & m1, l1.victim_tag))

            c2 = l2_code(line & m2, line >> b2, False)
            if c2 == 0:
                l2_hits += 1
                continue
            if c2 == 3:
                wb_lines += self._writeback_to_l3(l2.join(line & m2, l2.victim_tag))

            # demand access reaches the shared L3 (unless its set is unsampled)
            if not (smask and line & smask):
                c3 = l3_code(line & m3, line >> b3, False)
                if c3 == 0:
                    l3_hits += 1
                else:
                    l3_misses += 1
                    l3_fetches += 1
                    owner[line] = core
                    if c3 >= 2:  # eviction happened
                        wb_lines += self._back_invalidate(
                            l3.join(line & m3, l3.victim_tag), c3 == 3
                        )
            if pf_observe is not None:
                # the prefetcher trains on every L2 miss (full fidelity even
                # under sampling) but only fills sampled L3 sets
                for pline in pf_observe(line):
                    if smask and pline & smask:
                        continue
                    ps = pline & m3
                    pt = pline >> b3
                    if l3_probe(ps, pt) < 0:
                        pc = l3_fill(ps, pt, False)
                        l3_fetches += 1
                        pf_fills += 1
                        owner[pline] = core
                        if pc >= 2:
                            wb_lines += self._back_invalidate(
                                l3.join(ps, l3.victim_tag), pc == 3
                            )

        stats.l1_hits = l1_hits
        stats.l2_hits = l2_hits
        stats.l3_hits = l3_hits
        stats.l3_misses = l3_misses
        stats.l3_fetches = l3_fetches
        stats.prefetch_fills = pf_fills
        stats.dram_writeback_lines = wb_lines
        return stats

    def _access_chunk_l3_only(self, core: int, lines, writes) -> CoreMemStats:
        """Streaming fast path: demand accesses go straight to the L3.

        Exact for a thread whose per-line reuse distance exceeds its private
        L2 capacity (every access would miss L1/L2 anyway); the Pirate's
        linear sweep over a multi-MB working set qualifies.  The prefetcher
        is *not* engaged: the Pirate's fetch ratio must count every line it
        loses from the L3 (§II-A), so prefetch-covering its misses would
        defeat the monitor.
        """
        l3 = self.l3
        l3_code = l3._access_code
        m3, b3 = l3.set_mask, l3.tag_shift
        owner = self._owner
        smask = self._sample_mask

        stats = CoreMemStats()
        stats.mem_accesses = len(lines)
        l3_hits = 0
        l3_misses = 0
        wb_lines = 0

        writes_it = repeat(False) if writes is None else writes
        for line, w in zip(lines, writes_it):
            if smask and line & smask:
                continue
            c3 = l3_code(line & m3, line >> b3, w)
            if c3 == 0:
                l3_hits += 1
            else:
                l3_misses += 1
                owner[line] = core
                if c3 >= 2:
                    wb_lines += self._back_invalidate(
                        l3.join(line & m3, l3.victim_tag), c3 == 3
                    )

        stats.l3_hits = l3_hits
        stats.l3_misses = l3_misses
        stats.l3_fetches = l3_misses
        stats.dram_writeback_lines = wb_lines
        return stats

    # -- write-back plumbing ----------------------------------------------------

    def _install_dirty_l2(self, core: int, line: int) -> int:
        """Install a dirty L1 victim into L2; returns DRAM writebacks caused."""
        l2 = self.l2[core]
        s = line & l2.set_mask
        code = l2._fill_code(s, line >> l2.tag_shift, True)
        if code == MISS_DIRTY:
            return self._writeback_to_l3(l2.join(s, l2.victim_tag))
        return 0

    def _writeback_to_l3(self, line: int) -> int:
        """Dirty L2 victim written back; returns 1 if it had to go to DRAM."""
        if self._sample_mask and line & self._sample_mask:
            # the line's L3 set is not simulated under sampling; its
            # writeback traffic is represented by the sampled sets' rescale
            return 0
        l3 = self.l3
        if l3.mark_dirty(line & l3.set_mask, line >> l3.tag_shift):
            return 0
        # inclusion means this should not happen; be safe and count the line
        return 1

    def _back_invalidate(self, line: int, l3_dirty: bool) -> int:
        """Inclusive-L3 eviction: purge ``line`` from every private cache.

        Returns the number of DRAM writeback lines (0 or 1): the line goes to
        memory once if any cached copy was dirty.
        """
        dirty = l3_dirty
        owner = self._owner.pop(line, -1)
        if self._private_data and owner >= 0:
            if not self._priv_filled[owner]:
                # the owner never filled its private caches (bypass-private
                # Pirate): nothing to scan
                return 1 if dirty else 0
            l1 = self.l1[owner]
            present, was_dirty = l1.invalidate(line & l1.set_mask, line >> l1.tag_shift)
            if present and was_dirty:
                dirty = True
            l2 = self.l2[owner]
            present, was_dirty = l2.invalidate(line & l2.set_mask, line >> l2.tag_shift)
            if present and was_dirty:
                dirty = True
            return 1 if dirty else 0
        for filled, l1 in zip(self._priv_filled, self.l1):
            if not filled:
                continue
            present, was_dirty = l1.invalidate(line & l1.set_mask, line >> l1.tag_shift)
            if present and was_dirty:
                dirty = True
        for filled, l2 in zip(self._priv_filled, self.l2):
            if not filled:
                continue
            present, was_dirty = l2.invalidate(line & l2.set_mask, line >> l2.tag_shift)
            if present and was_dirty:
                dirty = True
        return 1 if dirty else 0

    # -- maintenance ---------------------------------------------------------------

    def flush(self) -> None:
        """Empty every cache and forget prefetch streams (fresh machine)."""
        for c in self.l1:
            c.flush()
        for c in self.l2:
            c.flush()
        self.l3.flush()
        self._owner.clear()
        self._priv_filled = [False] * len(self.l1)
        for pf in self.prefetchers:
            if pf is not None:
                pf.reset()

    def l3_resident(self, line: int) -> bool:
        """True when ``line`` is currently in the shared L3."""
        return self.l3.probe(line & self.l3.set_mask, line >> self.l3.tag_shift) >= 0
