"""The full Table I cache hierarchy: private L1/L2, shared inclusive L3.

One :class:`CacheHierarchy` instance is the memory system of the simulated
machine (``repro.hardware``) *and* the engine of the trace-driven reference
simulator (``repro.reference``) — the paper validates the former against the
latter, so both intentionally share this implementation with different
configurations driving them.

Semantics modelled (all load-bearing for the paper's experiments):

* write-allocate, write-back at every level,
* non-inclusive private L2 (dirty L1 victims are installed into L2),
* **inclusive shared L3**: evicting an L3 line back-invalidates every core's
  L1/L2 copy.  This is why stealing L3 ways also shrinks the Target's
  effective private capacity on Nehalem, and the simulation keeps it,
* demand fetches vs prefetch fetches counted separately per core (§I-B),
* a per-core stream prefetcher training on L2 misses and filling the L3.

The per-access loop is the hottest code in the library: it uses the caches'
int-code protocol (no allocation per access), pre-bound locals, and inlined
set/tag splitting.  ``access_chunk(..., bypass_private=True)`` additionally
skips the private levels — exact for streaming threads whose reuse distance
exceeds the L2 (the Pirate; see ``repro.core.pirate``) and used only there.
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from .base import CoreMemStats
from .prefetch import StreamPrefetcher
from .setassoc import MISS_DIRTY, SetAssocCache, make_cache


class CacheHierarchy:
    """Private L1/L2 per core plus one shared L3."""

    def __init__(self, config: MachineConfig, seed: int = 0):
        self.config = config
        n = config.num_cores
        self.l1: list[SetAssocCache] = [make_cache(config.l1, seed) for _ in range(n)]
        self.l2: list[SetAssocCache] = [make_cache(config.l2, seed) for _ in range(n)]
        self.l3: SetAssocCache = make_cache(config.l3, seed)
        self.prefetchers: list[StreamPrefetcher | None] = [
            StreamPrefetcher(config.prefetch_trigger, config.prefetch_degree)
            if config.prefetch_enabled
            else None
            for _ in range(n)
        ]
        #: cumulative per-core stats since construction.
        self.totals: list[CoreMemStats] = [CoreMemStats() for _ in range(n)]
        #: L3 line -> core that fetched it; lets back-invalidation visit one
        #: core instead of all (exact for disjoint per-thread address spaces,
        #: see ``MachineConfig.private_data``).
        self._owner: dict[int, int] = {}
        self._private_data: bool = config.private_data

    # -- single access (diagnostics / tiny tests) ----------------------------

    def access(self, core: int, line: int, is_write: bool = False) -> CoreMemStats:
        """Run one demand access through the hierarchy; returns its stats."""
        return self.access_chunk(core, [line], [is_write] if is_write else None)

    # -- hot path --------------------------------------------------------------

    def access_chunk(
        self,
        core: int,
        lines,
        writes=None,
        bypass_private: bool = False,
    ) -> CoreMemStats:
        """Run a sequence of demand accesses for ``core``.

        ``lines`` is a sequence of line addresses (numpy arrays are converted
        once); ``writes`` is an optional parallel boolean sequence (all-read
        when omitted).  Returns the chunk's :class:`CoreMemStats` and folds it
        into :attr:`totals`.
        """
        if isinstance(lines, np.ndarray):
            lines = lines.tolist()
        if isinstance(writes, np.ndarray):
            writes = writes.tolist()

        if bypass_private:
            stats = self._access_chunk_l3_only(core, lines, writes)
        else:
            stats = self._access_chunk_full(core, lines, writes)
        self.totals[core].add(stats)
        return stats

    def _access_chunk_full(self, core: int, lines, writes) -> CoreMemStats:
        l1 = self.l1[core]
        l2 = self.l2[core]
        l3 = self.l3
        pf = self.prefetchers[core]

        l1_code = l1._access_code
        l2_code = l2._access_code
        l3_code = l3._access_code
        l3_fill = l3._fill_code
        l3_probe = l3.probe
        pf_observe = pf.observe if pf is not None else None
        owner = self._owner

        m1, b1 = l1.set_mask, l1.tag_shift
        m2, b2 = l2.set_mask, l2.tag_shift
        m3, b3 = l3.set_mask, l3.tag_shift

        stats = CoreMemStats()
        n = len(lines)
        stats.mem_accesses = n
        l1_hits = 0
        l2_hits = 0
        l3_hits = 0
        l3_misses = 0
        l3_fetches = 0
        pf_fills = 0
        wb_lines = 0

        for i in range(n):
            line = lines[i]
            w = False if writes is None else writes[i]

            c1 = l1_code(line & m1, line >> b1, w)
            if c1 == 0:  # HIT
                l1_hits += 1
                continue
            if c1 == 3:  # MISS_DIRTY: install the dirty L1 victim into L2
                wb_lines += self._install_dirty_l2(core, l1.join(line & m1, l1.victim_tag))

            c2 = l2_code(line & m2, line >> b2, False)
            if c2 == 0:
                l2_hits += 1
                continue
            if c2 == 3:
                wb_lines += self._writeback_to_l3(l2.join(line & m2, l2.victim_tag))

            # demand access reaches the shared L3
            c3 = l3_code(line & m3, line >> b3, False)
            if c3 == 0:
                l3_hits += 1
            else:
                l3_misses += 1
                l3_fetches += 1
                owner[line] = core
                if c3 >= 2:  # eviction happened
                    wb_lines += self._back_invalidate(
                        l3.join(line & m3, l3.victim_tag), c3 == 3
                    )
            if pf_observe is not None:
                for pline in pf_observe(line):
                    ps = pline & m3
                    pt = pline >> b3
                    if l3_probe(ps, pt) < 0:
                        pc = l3_fill(ps, pt, False)
                        l3_fetches += 1
                        pf_fills += 1
                        owner[pline] = core
                        if pc >= 2:
                            wb_lines += self._back_invalidate(
                                l3.join(ps, l3.victim_tag), pc == 3
                            )

        stats.l1_hits = l1_hits
        stats.l2_hits = l2_hits
        stats.l3_hits = l3_hits
        stats.l3_misses = l3_misses
        stats.l3_fetches = l3_fetches
        stats.prefetch_fills = pf_fills
        stats.dram_writeback_lines = wb_lines
        return stats

    def _access_chunk_l3_only(self, core: int, lines, writes) -> CoreMemStats:
        """Streaming fast path: demand accesses go straight to the L3.

        Exact for a thread whose per-line reuse distance exceeds its private
        L2 capacity (every access would miss L1/L2 anyway); the Pirate's
        linear sweep over a multi-MB working set qualifies.  The prefetcher
        is *not* engaged: the Pirate's fetch ratio must count every line it
        loses from the L3 (§II-A), so prefetch-covering its misses would
        defeat the monitor.
        """
        l3 = self.l3
        l3_code = l3._access_code
        m3, b3 = l3.set_mask, l3.tag_shift
        owner = self._owner

        stats = CoreMemStats()
        n = len(lines)
        stats.mem_accesses = n
        l3_hits = 0
        l3_misses = 0
        wb_lines = 0

        for i in range(n):
            line = lines[i]
            w = False if writes is None else writes[i]
            c3 = l3_code(line & m3, line >> b3, w)
            if c3 == 0:
                l3_hits += 1
            else:
                l3_misses += 1
                owner[line] = core
                if c3 >= 2:
                    wb_lines += self._back_invalidate(
                        l3.join(line & m3, l3.victim_tag), c3 == 3
                    )

        stats.l3_hits = l3_hits
        stats.l3_misses = l3_misses
        stats.l3_fetches = l3_misses
        stats.dram_writeback_lines = wb_lines
        return stats

    # -- write-back plumbing ----------------------------------------------------

    def _install_dirty_l2(self, core: int, line: int) -> int:
        """Install a dirty L1 victim into L2; returns DRAM writebacks caused."""
        l2 = self.l2[core]
        s = line & l2.set_mask
        code = l2._fill_code(s, line >> l2.tag_shift, True)
        if code == MISS_DIRTY:
            return self._writeback_to_l3(l2.join(s, l2.victim_tag))
        return 0

    def _writeback_to_l3(self, line: int) -> int:
        """Dirty L2 victim written back; returns 1 if it had to go to DRAM."""
        l3 = self.l3
        if l3.mark_dirty(line & l3.set_mask, line >> l3.tag_shift):
            return 0
        # inclusion means this should not happen; be safe and count the line
        return 1

    def _back_invalidate(self, line: int, l3_dirty: bool) -> int:
        """Inclusive-L3 eviction: purge ``line`` from every private cache.

        Returns the number of DRAM writeback lines (0 or 1): the line goes to
        memory once if any cached copy was dirty.
        """
        dirty = l3_dirty
        owner = self._owner.pop(line, -1)
        if self._private_data and owner >= 0:
            l1 = self.l1[owner]
            present, was_dirty = l1.invalidate(line & l1.set_mask, line >> l1.tag_shift)
            if present and was_dirty:
                dirty = True
            l2 = self.l2[owner]
            present, was_dirty = l2.invalidate(line & l2.set_mask, line >> l2.tag_shift)
            if present and was_dirty:
                dirty = True
            return 1 if dirty else 0
        for l1 in self.l1:
            present, was_dirty = l1.invalidate(line & l1.set_mask, line >> l1.tag_shift)
            if present and was_dirty:
                dirty = True
        for l2 in self.l2:
            present, was_dirty = l2.invalidate(line & l2.set_mask, line >> l2.tag_shift)
            if present and was_dirty:
                dirty = True
        return 1 if dirty else 0

    # -- maintenance ---------------------------------------------------------------

    def flush(self) -> None:
        """Empty every cache and forget prefetch streams (fresh machine)."""
        for c in self.l1:
            c.flush()
        for c in self.l2:
            c.flush()
        self.l3.flush()
        self._owner.clear()
        for pf in self.prefetchers:
            if pf is not None:
                pf.reset()

    def l3_resident(self, line: int) -> bool:
        """True when ``line`` is currently in the shared L3."""
        return self.l3.probe(line & self.l3.set_mask, line >> self.l3.tag_shift) >= 0
