"""The client half of the curve service: a tiny blocking HTTP library.

:class:`ServiceClient` speaks the protocol in :mod:`.protocol` over a
unix socket or TCP, using nothing beyond the socket module — the same
stdlib-only constraint as the server.  It backs the ``repro
submit|status|fetch|watch`` CLI and is the library consumers import to
feed curves into downstream tooling (e.g. a partitioning optimizer).

``watch`` deserves a note: it yields the server's NDJSON progress
events and, when the stream is cut without a terminal event (network
chaos, server restart), transparently reconnects with ``since=<last
seq>`` — the event sequence numbers make delivery exactly-once no
matter how many times the stream drops.
"""

from __future__ import annotations

import json
import socket
import time
from collections.abc import Iterator
from pathlib import Path

from .protocol import PROTOCOL_VERSION, TERMINAL_EVENTS, JobSpec, ServiceError, job_to_wire

_RECV = 65536


class ServiceClient:
    """A blocking client bound to one server address.

    Address one of two ways: ``socket_path`` for a unix socket (tests,
    CI, same-host tooling) or ``host``/``port`` for TCP.  Every method
    opens a fresh connection — the server closes after each response, so
    there is deliberately no connection state to manage or corrupt.
    """

    def __init__(
        self,
        *,
        socket_path: str | Path | None = None,
        host: str | None = None,
        port: int = 0,
        timeout: float = 60.0,
        client_id: str = "",
    ):
        if socket_path is None and host is None:
            raise ServiceError("client needs a unix socket path or a host/port")
        self.socket_path = str(socket_path) if socket_path is not None else None
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.client_id = client_id

    # -- transport ------------------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
            return sock
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        return sock

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        """One request/response round trip; raises ServiceError on !ok."""
        raw = self._raw_request(method, path, body)
        _, payload = raw
        data = json.loads(payload.decode() or "{}")
        if not isinstance(data, dict) or data.get("protocol") != PROTOCOL_VERSION:
            raise ServiceError(f"unexpected response on {path}: {data!r}")
        if not data.get("ok", False):
            raise ServiceError(
                data.get("error", "request failed"),
                status=int(data.get("status", 400)),
            )
        return data

    def _raw_request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, bytes]:
        blob = json.dumps(body).encode() if body is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            "Host: repro\r\n"
            f"Content-Length: {len(blob)}\r\n"
            "Connection: close\r\n\r\n"
        )
        with self._connect() as sock:
            sock.sendall(head.encode() + blob)
            data = b""
            while True:
                chunk = sock.recv(_RECV)
                if not chunk:
                    break
                data += chunk
        return self._split_response(data, path)

    @staticmethod
    def _split_response(data: bytes, path: str) -> tuple[int, bytes]:
        head, sep, payload = data.partition(b"\r\n\r\n")
        if not sep:
            raise ServiceError(f"short response on {path}")
        status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        parts = status_line.split()
        status = int(parts[1]) if len(parts) > 1 and parts[1].isdigit() else 0
        return status, payload

    # -- protocol verbs -------------------------------------------------------------

    def submit(self, job: JobSpec) -> dict:
        """Submit one job; returns the submit envelope (key, state, dedup)."""
        return self._request(
            "POST", "/v1/submit", {"job": job_to_wire(job), "client": self.client_id}
        )

    def status(self, key: str) -> dict:
        """One job's lifecycle state."""
        return self._request("GET", f"/v1/status/{key}")

    def fetch(self, key: str) -> dict:
        """A finished job's full result envelope (409 while running)."""
        return self._request("GET", f"/v1/fetch/{key}")

    def stats(self) -> dict:
        """Server-wide counters, queue depth, and store occupancy."""
        return self._request("GET", "/v1/stats")

    def health(self) -> dict:
        """Liveness probe."""
        return self._request("GET", "/v1/healthz")

    def shutdown(self) -> dict:
        """Ask the server to stop (used by tests and ops tooling)."""
        return self._request("POST", "/v1/shutdown")

    def watch(
        self, key: str, *, since: int = 0, reconnect: bool = True
    ) -> Iterator[dict]:
        """Yield a job's progress events; stops after a terminal event.

        ``since`` skips events with seq <= since (resuming a dropped
        stream); with ``reconnect`` the client re-dials automatically
        when the server cuts the stream early, so callers see every
        event exactly once even under connection chaos.
        """
        last_seq = since
        while True:
            saw_terminal, last_seq, events = self._watch_once(key, last_seq)
            yield from events
            if saw_terminal or not reconnect:
                return
            if not events:
                time.sleep(0.05)  # server mid-restart: back off briefly

    def _watch_once(self, key: str, since: int):
        """One watch connection; returns (saw_terminal, last_seq, events).

        A generator-free helper so :meth:`watch` can own the reconnect
        policy while the event parse lives in one place.
        """
        events: list[dict] = []
        saw_terminal = False
        last_seq = since
        with self._connect() as sock:
            head = (
                f"GET /v1/watch/{key}?since={since} HTTP/1.1\r\n"
                "Host: repro\r\nConnection: close\r\n\r\n"
            )
            sock.sendall(head.encode())
            buffer = b""
            header_done = False
            while True:
                try:
                    chunk = sock.recv(_RECV)
                except TimeoutError:
                    break
                if not chunk:
                    break
                buffer += chunk
                if not header_done:
                    head_blob, sep, rest = buffer.partition(b"\r\n\r\n")
                    if not sep:
                        continue
                    status_line = head_blob.split(b"\r\n", 1)[0].decode("latin-1")
                    parts = status_line.split()
                    status = int(parts[1]) if len(parts) > 1 else 0
                    if status != 200:
                        body = rest
                        while True:
                            chunk = sock.recv(_RECV)
                            if not chunk:
                                break
                            body += chunk
                        data = json.loads(body.decode() or "{}")
                        raise ServiceError(
                            data.get("error", f"watch failed ({status})"),
                            status=status,
                        )
                    header_done = True
                    buffer = rest
                while b"\n" in buffer:
                    line, _, buffer = buffer.partition(b"\n")
                    if not line.strip():
                        continue
                    event = json.loads(line.decode())
                    if event.get("seq", 0) <= last_seq:
                        continue
                    last_seq = event["seq"]
                    events.append(event)
                    if event.get("type") in TERMINAL_EVENTS:
                        saw_terminal = True
                if saw_terminal:
                    break
        return saw_terminal, last_seq, events

    def wait(self, key: str, *, timeout: float = 300.0) -> dict:
        """Watch until terminal, then fetch; the simple blocking consumer."""
        deadline = time.monotonic() + timeout
        for _ in self.watch(key):
            if time.monotonic() > deadline:
                raise ServiceError(f"timed out waiting for job {key!r}")
        status = self.status(key)
        if status.get("state") == "failed":
            raise ServiceError(f"job failed: {status.get('error', '')}", status=409)
        return self.fetch(key)
