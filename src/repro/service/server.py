"""The asyncio sweep server behind ``repro serve``.

Architecture (DESIGN.md §10): requests arrive over stdlib-only HTTP/1.1
(TCP or a unix socket), land in a bounded job queue, and are drained by
a small pool of job workers, each of which pushes the sweep through the
same engines the batch CLI uses — :func:`run_sweep_supervised` for
``measure`` (journaled, resumable), :func:`run_surrogate_sweep` /
:func:`run_auto_sweep` for the analytic tiers.  Identical submissions
coalesce on their content key *before* the queue, so N clients asking
for the same curve cost one execution; finished curves live in a
:class:`~repro.service.store.ResultStore` (LRU, warm-started) and every
point they were assembled from lives in the shared
:class:`~repro.core.parallel.SweepCache`, so even an evicted answer is
a recompute-from-hits, never a re-measurement.

Crash safety is two journals deep: the *service journal* write-ahead
logs every accepted job so a restarted server re-enqueues whatever was
in flight, and each measured job runs under the PR 6 *run journal*
keyed by a run id derived from the job's content key — a SIGKILL'd
server resumes mid-sweep with zero completed points re-executed.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from ..analysis.merge import assemble_curve
from ..core.journal import (
    JournalState,
    _JournalWriter,
    journal_path,
    read_journal_records,
)
from ..core.parallel import SweepCache, sweep_spec_sha
from ..core.supervisor import SupervisorPolicy, run_sweep_supervised
from ..errors import MeasurementError, ReproError
from ..faults.chaos import ServiceChaosPlan, service_chaos_from_env
from ..observability import ensure_telemetry
from .protocol import (
    PROTOCOL_VERSION,
    TERMINAL_EVENTS,
    JobSpec,
    ServiceError,
    envelope,
    error_envelope,
    job_from_wire,
    job_key,
    job_to_wire,
)
from .store import ResultStore

#: service journal format; foreign journals are ignored on restart
SERVICE_JOURNAL_VERSION = 1

#: the service journal's filename under ``<state_dir>/journals``
SERVICE_JOURNAL = "service.journal.jsonl"

_MAX_BODY = 4 * 1024 * 1024


def job_run_id(key: str) -> str:
    """The run-journal id a job's measured sweep is journaled under.

    Derived from the content key, so a restarted server (or a second
    server on the same state dir) resumes the same journal — and so a
    CLI user can ``repro sweep --journal-dir <state>/journals --resume
    job-<key16>`` to adopt a server-side journal, or vice versa.
    """
    return f"job-{key[:16]}"


@dataclass
class Job:
    """One tracked submission: spec, lifecycle, and its event history."""

    key: str
    spec: JobSpec
    client: str = ""
    state: str = "queued"
    error: str = ""
    events: list[dict] = field(default_factory=list)
    watchers: set = field(default_factory=set)
    #: clients that asked for this job (for quota release on finish)
    clients: set = field(default_factory=set)


class SweepServer:
    """The service core, independent of any particular socket.

    ``sweep_workers`` is the *per-job* process-pool width handed to the
    engines (0 = in-thread serial, bit-identical either way);
    ``job_workers`` is how many jobs execute concurrently; ``queue_size``
    bounds accepted-but-unstarted jobs (409 beyond); ``quota`` caps one
    client's unfinished jobs (429 beyond, 0 = unlimited).
    """

    def __init__(
        self,
        state_dir: str | Path,
        *,
        job_workers: int = 2,
        sweep_workers: int = 0,
        queue_size: int = 64,
        store_max: int = 1024,
        quota: int = 0,
        point_timeout: float | None = None,
        telemetry=None,
    ):
        if job_workers < 1:
            raise ReproError("serve needs job_workers >= 1")
        if queue_size < 1:
            raise ReproError("serve needs queue_size >= 1")
        self.state_dir = Path(state_dir)
        self.cache_dir = self.state_dir / "cache"
        self.journal_dir = self.state_dir / "journals"
        for d in (self.state_dir, self.cache_dir, self.journal_dir):
            d.mkdir(parents=True, exist_ok=True)
        self.job_workers = int(job_workers)
        self.sweep_workers = int(sweep_workers)
        self.queue_size = int(queue_size)
        self.quota = int(quota)
        self.point_timeout = point_timeout
        self.tel = ensure_telemetry(telemetry)
        self.store = ResultStore(
            self.state_dir / "store", max_entries=store_max, telemetry=self.tel
        )
        self.cache = SweepCache(self.cache_dir, telemetry=self.tel)
        self.chaos: ServiceChaosPlan | None = service_chaos_from_env()
        if self.chaos is not None and self.chaos.worker is not None:
            # pool workers read CHAOS_ENV at point time; publish once here
            self.chaos.worker.install_env()

        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._journal = _JournalWriter(self.journal_dir / SERVICE_JOURNAL)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue | None = None
        self._workers: list[asyncio.Task] = []
        self._servers: list[asyncio.AbstractServer] = []
        self._stopping: asyncio.Event | None = None
        self._started_monotonic = time.monotonic()
        self.stats = {
            "jobs_submitted": 0,
            "jobs_executed": 0,
            "jobs_deduped": 0,
            "jobs_cached": 0,
            "jobs_failed": 0,
            "jobs_recovered": 0,
            "watch_streams": 0,
        }

    # -- service journal ------------------------------------------------------------

    def _journal_job(self, key: str, state: str, spec: JobSpec | None = None) -> None:
        record = {
            "type": "job",
            "service_format": SERVICE_JOURNAL_VERSION,
            "key": key,
            "state": state,
        }
        if spec is not None:
            record["job"] = job_to_wire(spec)
        with self._lock:
            self._journal.append(record)

    def _recover_jobs(self) -> list[JobSpec]:
        """Jobs the last process accepted but never finished.

        Replays the service journal: the last state per key wins, and
        anything still ``submitted`` is re-built from its journaled wire
        form for re-enqueueing.  The per-job *run* journal then makes the
        re-execution skip every point the dead server completed.
        """
        last: dict[str, dict] = {}
        for record in read_journal_records(self.journal_dir / SERVICE_JOURNAL):
            if record.get("type") != "job":
                continue
            if record.get("service_format") != SERVICE_JOURNAL_VERSION:
                continue
            key = record.get("key")
            if not key:
                continue
            prev = last.get(key)
            if record.get("state") == "submitted" or prev is None:
                last[key] = record
            else:
                prev["state"] = record["state"]
        orphans = []
        for key, record in last.items():
            if record.get("state") != "submitted":
                continue
            try:
                orphans.append(job_from_wire(record.get("job")))
            except ServiceError:
                continue  # a torn or foreign record is not worth a crash
        return orphans

    # -- events ---------------------------------------------------------------------

    def _emit(self, job: Job, kind: str, **extra) -> None:
        """Append one progress event and fan it out to live watchers.

        Callable from any thread: the event list is appended under the
        lock (seq = len + 1, so sequences are dense and start at 1), and
        watcher queues are fed on the event loop.
        """
        with self._lock:
            event = {
                "seq": len(job.events) + 1,
                "type": kind,
                "key": job.key,
                "state": job.state,
            }
            event.update(extra)
            job.events.append(event)
            watchers = list(job.watchers)
        self.tel.count(f"service.events.{kind}")
        if self._loop is not None and watchers:

            def fan_out() -> None:
                for q in watchers:
                    q.put_nowait(event)

            self._loop.call_soon_threadsafe(fan_out)

    # -- submission -----------------------------------------------------------------

    def submit(self, spec: JobSpec, client: str = "") -> dict:
        """Accept, dedupe, or answer a job; returns the submit envelope.

        The dedup ladder: an in-flight (or finished) registry entry wins
        first, then the result store, then admission control (quota,
        queue bound) and a fresh enqueue.  Only the last path ever
        executes anything.
        """
        key = job_key(spec)
        with self._lock:
            self.stats["jobs_submitted"] += 1
            existing = self._jobs.get(key)
            if existing is not None and existing.state in ("queued", "running"):
                existing.clients.add(client)
                self.stats["jobs_deduped"] += 1
                return envelope(key, state=existing.state, cached=False, dedup=True)
            if existing is not None and existing.state == "done":
                # trust the registry only while the store still holds the
                # artifact — after LRU eviction the job must re-enqueue
                # (recomputing against the point cache, not re-measuring)
                if self.store.get(key) is not None:
                    existing.clients.add(client)
                    self.stats["jobs_cached"] += 1
                    return envelope(key, state="done", cached=True, dedup=False)
                existing = None
            if self.store.get(key) is not None:
                # a warm answer (this process never saw the submit): adopt
                # it into the registry so status/watch/fetch all work
                job = Job(key=key, spec=spec, client=client, state="done")
                self._jobs[key] = job
                self.stats["jobs_cached"] += 1
            elif self.quota and self._active_jobs(client) >= self.quota:
                raise ServiceError(
                    f"client {client or '(anonymous)'} has {self.quota} unfinished "
                    "jobs (quota); fetch or wait before submitting more",
                    status=429,
                )
            elif self._queue is not None and self._queue.qsize() >= self.queue_size:
                raise ServiceError(
                    f"job queue is full ({self.queue_size}); retry later",
                    status=409,
                )
            else:
                job = Job(key=key, spec=spec, client=client, state="queued")
                job.clients.add(client)
                self._jobs[key] = job
                self._journal.append(
                    {
                        "type": "job",
                        "service_format": SERVICE_JOURNAL_VERSION,
                        "key": key,
                        "state": "submitted",
                        "job": job_to_wire(spec),
                    }
                )
        if self._jobs[key].state == "done" and existing is None:
            job = self._jobs[key]
            self._emit(job, "warm")
            self._emit(job, "finished", source="store")
            return envelope(key, state="done", cached=True, dedup=False)
        job = self._jobs[key]
        self._emit(job, "submitted", client=client)
        self._emit(job, "queued")
        if self._loop is not None and self._queue is not None:
            self._loop.call_soon_threadsafe(self._queue.put_nowait, job)
        return envelope(key, state="queued", cached=False, dedup=False)

    def _active_jobs(self, client: str) -> int:
        return sum(
            1
            for j in self._jobs.values()
            if client in j.clients and j.state in ("queued", "running")
        )

    # -- execution ------------------------------------------------------------------

    def _execute(self, job: Job) -> None:
        """Run one job to completion (worker-thread side)."""
        with self._lock:
            if job.state == "done":  # answered while queued (dedup window)
                return
            job.state = "running"
            self.stats["jobs_executed"] += 1
        started = time.monotonic()
        self._emit(job, "started", engine=job.spec.engine)
        try:
            payload = self._run_job(job)
        except ReproError as e:
            with self._lock:
                job.state = "failed"
                job.error = str(e)
                self.stats["jobs_failed"] += 1
            self._journal_job(job.key, "failed")
            self._emit(job, "failed", error=str(e))
            return
        payload["elapsed_s"] = round(time.monotonic() - started, 6)
        self.store.put(job.key, payload)
        with self._lock:
            job.state = "done"
        self._journal_job(job.key, "done")
        self._emit(job, "finished", stats=payload.get("stats", {}))

    def _run_job(self, job: Job) -> dict:
        """Dispatch one job through the engine tiers; returns the payload."""
        spec = job.spec.sweep_spec(telemetry_enabled=self.tel.enabled)
        sizes = list(job.spec.sizes_mb)
        stats_out = {}
        if job.spec.engine == "measure":
            run_id = job.spec.run_id or job_run_id(job.key)
            resume = journal_path(self.journal_dir, run_id).exists()
            if resume:
                try:
                    state = JournalState.load(self.journal_dir, run_id)
                except MeasurementError:
                    # a headless/torn journal (killed before the head
                    # fsync'd) cannot be resumed; start over from the cache
                    journal_path(self.journal_dir, run_id).unlink(missing_ok=True)
                    resume = False
                else:
                    # a foreign journal under this run id is a hard error
                    # (only reachable with a user-supplied run_id) — the
                    # supervisor refuses it anyway, so fail loudly here
                    # instead of deleting someone else's journal
                    if state.spec_sha != sweep_spec_sha(spec, sizes):
                        raise MeasurementError(
                            f"run id {run_id!r} pins a different sweep; "
                            "refusing to resume across configurations"
                        )
                    done = sum(1 for s in state.states.values() if s == "done")
                    self._emit(job, "resumed", run_id=run_id, done=done)
            policy = (
                SupervisorPolicy(point_timeout_s=self.point_timeout)
                if self.point_timeout is not None
                else None
            )
            results, stats = run_sweep_supervised(
                spec,
                sizes,
                workers=self.sweep_workers,
                cache_dir=self.cache_dir,
                policy=policy,
                journal_dir=self.journal_dir,
                run_id=run_id,
                resume=resume,
                telemetry=self.tel,
            )
            stats_out = {
                "measured": stats.measured,
                "cache_hits": stats.cache_hits,
                "journal_hits": stats.journal_hits,
                "quarantined": stats.quarantined,
                "retries": stats.retries,
                "run_id": stats.run_id,
            }
        else:
            from ..surrogate import run_auto_sweep, run_surrogate_sweep

            if job.spec.engine == "surrogate":
                results, sstats = run_surrogate_sweep(
                    spec, sizes, policy=None, cache_dir=self.cache_dir, telemetry=self.tel
                )
            else:
                results, sstats = run_auto_sweep(
                    spec,
                    sizes,
                    policy=None,
                    workers=self.sweep_workers,
                    cache_dir=self.cache_dir,
                    telemetry=self.tel,
                )
            stats_out = {
                "measured": getattr(sstats, "measured", 0),
                "cache_hits": getattr(sstats, "cache_hits", 0),
                "journal_hits": 0,
                "quarantined": 0,
                "retries": 0,
                "run_id": "",
            }
        curve = assemble_curve(
            spec.benchmark, results, job.spec.machine.core.clock_hz, telemetry=self.tel
        )
        payload = {
            "protocol": PROTOCOL_VERSION,
            "key": job.key,
            "benchmark": curve.benchmark,
            "engine": job.spec.engine,
            "sweep_sha": sweep_spec_sha(spec, sizes),
            "rows": curve.to_rows(),
            "stats": stats_out,
        }
        quality = getattr(curve, "quality", None)
        if quality:
            payload["quality"] = {str(i): q.label for i, q in sorted(quality.items())}
        return payload

    # -- queries --------------------------------------------------------------------

    def status(self, key: str) -> dict:
        with self._lock:
            job = self._jobs.get(key)
            if job is None:
                if self.store.get(key) is not None:
                    return envelope(key, state="done", events=0, cached=True)
                raise ServiceError(f"unknown job {key!r}", status=404)
            return envelope(
                key,
                state=job.state,
                events=len(job.events),
                error=job.error,
                cached=False,
            )

    def fetch(self, key: str) -> dict:
        payload = self.store.get(key)
        if payload is not None:
            return envelope(key, result=payload)
        with self._lock:
            job = self._jobs.get(key)
        if job is None:
            raise ServiceError(f"unknown job {key!r}", status=404)
        if job.state == "failed":
            raise ServiceError(f"job failed: {job.error}", status=409)
        if job.state == "done":
            raise ServiceError("result was evicted; resubmit to recompute", status=409)
        raise ServiceError(f"job is {job.state}; watch or retry later", status=409)

    def server_stats(self) -> dict:
        with self._lock:
            counters = dict(self.stats)
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        return envelope(
            stats=counters,
            jobs=states,
            queue_depth=self._queue.qsize() if self._queue else 0,
            store={
                "entries": len(self.store),
                "max_entries": self.store.max_entries,
                "evictions": self.store.evictions,
            },
            uptime_s=round(time.monotonic() - self._started_monotonic, 6),
        )

    # -- asyncio plumbing -----------------------------------------------------------

    async def start(
        self,
        *,
        socket_path: str | Path | None = None,
        host: str | None = None,
        port: int = 0,
    ) -> None:
        """Warm-start state, launch workers, and bind the socket(s)."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._stopping = asyncio.Event()
        warmed = self.store.warm_start()
        if warmed:
            self.tel.count("service.warm_started", warmed)
        for spec in self._recover_jobs():
            key = job_key(spec)
            if self.store.get(key) is not None:
                continue
            with self._lock:
                job = Job(key=key, spec=spec, state="queued")
                self._jobs[key] = job
                self.stats["jobs_recovered"] += 1
            self._emit(job, "queued", recovered=True)
            self._queue.put_nowait(job)
        self._workers = [
            asyncio.create_task(self._worker_loop(), name=f"job-worker-{i}")
            for i in range(self.job_workers)
        ]
        if socket_path is not None:
            Path(socket_path).unlink(missing_ok=True)
            self._servers.append(
                await asyncio.start_unix_server(self._handle, path=str(socket_path))
            )
        if host is not None:
            self._servers.append(
                await asyncio.start_server(self._handle, host=host, port=port)
            )
        if not self._servers:
            raise ReproError("serve needs a unix socket path or a host/port")

    @property
    def tcp_port(self) -> int | None:
        """The bound TCP port, when serving TCP (for port-0 tests)."""
        for server in self._servers:
            for sock in server.sockets:
                addr = sock.getsockname()
                if isinstance(addr, tuple):
                    return addr[1]
        return None

    async def _worker_loop(self) -> None:
        assert self._queue is not None
        while True:
            job = await self._queue.get()
            try:
                await asyncio.to_thread(self._execute, job)
            finally:
                self._queue.task_done()

    async def stop(self) -> None:
        """Stop accepting, cancel workers, release the sockets."""
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers.clear()
        if self.chaos is not None and self.chaos.worker is not None:
            # un-publish what __init__ installed; chaos must not outlive us
            self.chaos.worker.clear_env()
        if self._stopping is not None:
            self._stopping.set()

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` (or ``/v1/shutdown``) is called."""
        assert self._stopping is not None
        await self._stopping.wait()

    # -- HTTP layer -----------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, body = request
            await self._dispatch(method, path, query, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > _MAX_BODY:
            return None
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        return method, split.path, parse_qs(split.query), body

    async def _dispatch(self, method, path, query, body, writer) -> None:
        try:
            if method == "POST" and path == "/v1/submit":
                data = self._json_body(body)
                spec = job_from_wire(data.get("job"))
                reply = await asyncio.to_thread(
                    self.submit, spec, str(data.get("client", ""))
                )
                await self._respond(writer, 200, reply)
            elif method == "GET" and path.startswith("/v1/status/"):
                await self._respond(writer, 200, self.status(path.rsplit("/", 1)[1]))
            elif method == "GET" and path == "/v1/status":
                await self._respond(writer, 200, self.server_stats())
            elif method == "GET" and path.startswith("/v1/fetch/"):
                await self._respond(writer, 200, self.fetch(path.rsplit("/", 1)[1]))
            elif method == "GET" and path.startswith("/v1/watch/"):
                since = int(query.get("since", ["0"])[0])
                await self._watch(writer, path.rsplit("/", 1)[1], since)
            elif method == "GET" and path == "/v1/stats":
                await self._respond(writer, 200, self.server_stats())
            elif method == "GET" and path == "/v1/healthz":
                await self._respond(writer, 200, envelope(status="healthy"))
            elif method == "POST" and path == "/v1/shutdown":
                await self._respond(writer, 200, envelope(stopping=True))
                asyncio.get_running_loop().call_soon(asyncio.ensure_future, self.stop())
            else:
                await self._respond(
                    writer, 404, error_envelope(f"no route {method} {path}", status=404)
                )
        except ServiceError as e:
            await self._respond(writer, e.status, error_envelope(str(e), status=e.status))

    @staticmethod
    def _json_body(body: bytes) -> dict:
        try:
            data = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as e:
            raise ServiceError(f"request body is not JSON: {e}") from None
        if not isinstance(data, dict):
            raise ServiceError("request body must be a JSON object")
        return data

    async def _respond(self, writer, status: int, payload: dict) -> None:
        blob = json.dumps(payload, sort_keys=True).encode()
        reasons = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            409: "Conflict",
            429: "Too Many Requests",
        }
        reason = reasons.get(status, "Error")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(blob)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + blob)
        await writer.drain()

    async def _watch(self, writer, key: str, since: int) -> None:
        """Stream a job's events as NDJSON until a terminal event.

        A watcher queue registers *before* the backlog snapshot, so no
        event can fall between replay and live delivery; duplicates from
        that overlap are dropped by sequence number.  ``since`` skips
        already-seen events on reconnect (exactly-once across drops).
        """
        with self._lock:
            job = self._jobs.get(key)
            if job is None:
                payload = self.store.get(key)
                if payload is None:
                    raise ServiceError(f"unknown job {key!r}", status=404)
                backlog = [
                    {"seq": 1, "type": "finished", "key": key, "state": "done",
                     "source": "store"}
                ]
                live = None
            else:
                live = asyncio.Queue()
                job.watchers.add(live)
                backlog = list(job.events)
            self.stats["watch_streams"] += 1
        drop_after = self.chaos.drop_stream_after if self.chaos else None
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode())
        sent = 0
        last_seq = since
        try:
            events = backlog
            while True:
                for event in events:
                    if event["seq"] <= last_seq:
                        continue
                    if drop_after is not None and sent >= drop_after:
                        return  # chaos: cut the stream mid-flight
                    writer.write((json.dumps(event, sort_keys=True) + "\n").encode())
                    await writer.drain()
                    sent += 1
                    last_seq = event["seq"]
                    if event["type"] in TERMINAL_EVENTS:
                        return
                if live is None:
                    return
                events = [await live.get()]
        finally:
            if live is not None:
                with self._lock:
                    job.watchers.discard(live)


async def run_server(
    state_dir: str | Path,
    *,
    socket_path: str | Path | None = None,
    host: str | None = None,
    port: int = 0,
    **kwargs,
) -> None:
    """Build a :class:`SweepServer`, bind it, and serve until shutdown."""
    server = SweepServer(state_dir, **kwargs)
    await server.start(socket_path=socket_path, host=host, port=port)
    try:
        await server.serve_forever()
    finally:
        await server.stop()
