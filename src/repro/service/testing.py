"""An in-process server harness for tests and golden scenarios.

:class:`ServerThread` runs a :class:`~repro.service.server.SweepServer`
on its own event loop in a daemon thread, bound to a unix socket, and
tears it down deterministically — so the async service can be exercised
from plain synchronous pytest functions (and the ``service`` golden)
without subprocess management.  Tests that need a *killable* server
(SIGKILL resume coverage) spawn ``repro serve`` as a subprocess instead;
this harness is for everything else.
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path

from ..errors import ReproError
from .client import ServiceClient
from .server import SweepServer


class ServerThread:
    """A live server on a unix socket, scoped with ``with``.

    ``server_kwargs`` pass through to :class:`SweepServer` (queue bounds,
    quotas, store caps, worker counts).  The constructor blocks until the
    socket is accepting, so a client built from :attr:`client` works
    immediately.
    """

    def __init__(self, state_dir: str | Path, socket_path: str | Path, **server_kwargs):
        self.state_dir = Path(state_dir)
        self.socket_path = Path(socket_path)
        self.server = SweepServer(self.state_dir, **server_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise ReproError("service test server failed to start in 30s")
        if self._error is not None:
            raise ReproError(f"service test server failed: {self._error}")

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            await self.server.start(socket_path=self.socket_path)
        except BaseException as e:  # startup failure must unblock the ctor
            self._error = e
            self._ready.set()
            return
        self._ready.set()
        await self.server.serve_forever()

    def client(self, client_id: str = "", timeout: float = 120.0) -> ServiceClient:
        """A fresh client bound to this server's socket."""
        return ServiceClient(
            socket_path=self.socket_path, client_id=client_id, timeout=timeout
        )

    def stop(self) -> None:
        """Stop the server and join its thread (idempotent)."""
        if self._loop is not None and self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            ).result(timeout=30.0)
        self._thread.join(timeout=30.0)
        self._loop = None

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
