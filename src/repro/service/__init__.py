"""Curve-as-a-service: the sweep engines behind a long-running server.

The batch CLI made one curve cheap (cache hits in microseconds,
surrogate points in milliseconds); this package makes curves *servable*:
a stdlib-only asyncio HTTP server (``repro serve``) with a bounded job
queue, content-key dedup of identical in-flight work, a multi-tenant
LRU result store warm-started across restarts, and journal-backed crash
resume — plus the blocking :class:`ServiceClient` and the ``repro
submit|status|fetch|watch`` CLI that consume it.

* :mod:`repro.service.protocol` — JobSpec, content keys, envelopes, the
  event-stream schema (the whole wire contract in one module),
* :mod:`repro.service.server` — :class:`SweepServer`: queue, dedup,
  workers, journals, the HTTP layer,
* :mod:`repro.service.store` — :class:`ResultStore`: bounded LRU over
  atomic checksummed artifacts,
* :mod:`repro.service.client` — :class:`ServiceClient`: submit, fetch,
  and reconnect-safe event streaming,
* :mod:`repro.service.testing` — :class:`ServerThread`: in-process
  server for sync tests and the ``service`` golden.
"""

from .client import ServiceClient
from .protocol import (
    EVENT_TYPES,
    JOB_ENGINES,
    JOB_STATES,
    PROTOCOL_VERSION,
    TERMINAL_EVENTS,
    JobSpec,
    ServiceError,
    envelope,
    error_envelope,
    job_from_wire,
    job_key,
    job_to_wire,
    normalize_envelope,
)
from .server import SweepServer, job_run_id, run_server
from .store import ResultStore
from .testing import ServerThread

__all__ = [
    "PROTOCOL_VERSION",
    "JOB_ENGINES",
    "JOB_STATES",
    "EVENT_TYPES",
    "TERMINAL_EVENTS",
    "JobSpec",
    "ServiceError",
    "job_key",
    "job_to_wire",
    "job_from_wire",
    "job_run_id",
    "envelope",
    "error_envelope",
    "normalize_envelope",
    "ResultStore",
    "SweepServer",
    "run_server",
    "ServiceClient",
    "ServerThread",
]
