"""Multi-tenant result store: finished curves, LRU-evicted, warm-started.

One JSON artifact per job key, layered *above* the point-level
:class:`~repro.core.parallel.SweepCache`: the store holds assembled
responses (rows + quality + stats) while the sweep cache holds the raw
points they were built from.  That split makes eviction cheap to be
aggressive about — evicting a store entry only discards the assembly,
and recomputing it against a warm sweep cache is all cache hits.

Writes are atomic (tmp + rename, like every other on-disk artifact in
this repo) and each entry embeds its own sha256 so a torn or tampered
file is detected on load and treated as a miss, never served.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path

from ..observability import ensure_telemetry

#: bumped on any incompatible artifact change; foreign entries are misses
STORE_FORMAT_VERSION = 1

_KEY_LEN = 64  # sha256 hex


def _entry_path(root: Path, key: str) -> Path:
    return root / f"{key}.json"


class ResultStore:
    """A bounded, disk-backed, thread-safe map of job key -> response.

    ``max_entries`` caps the resident set; inserting beyond it evicts the
    least recently *used* entry (loads refresh recency, like the OS page
    cache the paper measures around).  ``warm_start`` reloads survivors
    from disk after a restart, newest first, so a rebooted server answers
    what it answered before without executing anything.
    """

    def __init__(self, root: str | Path, *, max_entries: int = 1024, telemetry=None):
        if max_entries < 1:
            raise ValueError("result store needs max_entries >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = int(max_entries)
        self._tel = ensure_telemetry(telemetry)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[str]:
        """Resident keys, least-recently-used first."""
        with self._lock:
            return list(self._entries)

    def get(self, key: str) -> dict | None:
        """The stored response for ``key``, refreshing its recency."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                return None
            self._entries.move_to_end(key)
            self._tel.count("service.store.hits")
            return payload

    def put(self, key: str, payload: dict) -> None:
        """Store (and persist) a finished response, evicting beyond cap."""
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        entry = {
            "store_format": STORE_FORMAT_VERSION,
            "sha256": hashlib.sha256(blob.encode()).hexdigest(),
            "payload": payload,
        }
        with self._lock:
            path = _entry_path(self.root, key)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(entry, sort_keys=True))
            os.replace(tmp, path)
            self._entries[key] = payload
            self._entries.move_to_end(key)
            self._tel.count("service.store.puts")
            while len(self._entries) > self.max_entries:
                victim, _ = self._entries.popitem(last=False)
                _entry_path(self.root, victim).unlink(missing_ok=True)
                self.evictions += 1
                self._tel.count("service.store.evictions")

    def _load_entry(self, path: Path) -> dict | None:
        """One artifact off disk, or None if torn/tampered/foreign."""
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("store_format") != STORE_FORMAT_VERSION:
            return None
        payload = entry.get("payload")
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        if hashlib.sha256(blob.encode()).hexdigest() != entry.get("sha256"):
            return None
        return payload

    def warm_start(self) -> int:
        """Preload up to ``max_entries`` artifacts from disk, newest first.

        Returns the number of entries resurrected.  Corrupt artifacts are
        skipped (a warm start must never serve a torn write); artifacts
        beyond the cap are deleted so disk usage tracks the configured
        bound across restarts.
        """
        candidates = sorted(
            (p for p in self.root.glob("*.json") if len(p.stem) == _KEY_LEN),
            key=lambda p: p.stat().st_mtime,
            reverse=True,
        )
        loaded = 0
        with self._lock:
            for path in candidates:
                if loaded >= self.max_entries:
                    path.unlink(missing_ok=True)
                    continue
                payload = self._load_entry(path)
                if payload is None:
                    path.unlink(missing_ok=True)
                    continue
                # newest-first scan, but the OrderedDict wants oldest
                # first so move_to_end keeps mtime order: insert at front
                self._entries[path.stem] = payload
                self._entries.move_to_end(path.stem, last=False)
                loaded += 1
        self._tel.count("service.store.warm_loaded", loaded)
        return loaded
