"""Wire protocol for the curve service.

Everything the server and its clients exchange is defined here, in one
place, as plain-JSON data: the job description (:class:`JobSpec`), its
content key (:func:`job_key`), the HTTP endpoints (:data:`ENDPOINTS`),
the response envelope (:func:`envelope`), and the progress-event stream
schema (:data:`EVENT_TYPES`).  Both sides import this module and nothing
else from each other, so a protocol change is a one-file diff — and the
``service`` golden pins the envelope and event schema against drift.

The key property the protocol must preserve is *content addressing*: a
:class:`JobSpec` maps deterministically onto the same
:class:`~repro.core.parallel.SweepSpec` that ``repro sweep`` builds, so
its key is derived from :func:`~repro.core.parallel.sweep_spec_sha` —
the exact identity the PR 6 journal pins and the sweep cache keys by.
Submitting the same curve twice, from two clients, or once via the
batch CLI and once via the service, is one execution.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields

from ..config import MachineConfig, machine_from_dict, machine_to_dict, nehalem_config
from ..core.harness import DEFAULT_INTERVAL_INSTRUCTIONS
from ..core.monitor import DEFAULT_FETCH_RATIO_THRESHOLD
from ..core.parallel import SweepSpec, sweep_spec_sha
from ..errors import ConfigError, ReproError
from ..workloads import TargetSpec

#: bumped on any incompatible wire change; echoed in every envelope
PROTOCOL_VERSION = 1

#: engine tiers a job may request (mirrors ``ENGINE_TIERS`` by value so a
#: wire validation failure doesn't need the caches package imported)
JOB_ENGINES = ("measure", "surrogate", "auto")

#: job lifecycle states as reported by /v1/status and the event stream
JOB_STATES = ("queued", "running", "done", "failed")

#: every progress-event type the server may emit on a watch stream.
#: ``submitted`` fires on first registration, ``dedup`` when a submit
#: coalesced onto in-flight work, ``warm`` when it was answered from the
#: result store without executing, ``queued``/``started``/``resumed``
#: mark scheduling, and ``finished``/``failed`` are terminal.
EVENT_TYPES = (
    "submitted",
    "dedup",
    "warm",
    "queued",
    "started",
    "resumed",
    "finished",
    "failed",
)

#: terminal event types: a watch stream closes after emitting one
TERMINAL_EVENTS = ("finished", "failed")

#: the HTTP surface (method, path-prefix); paths are /v1/<verb>[/<key>]
ENDPOINTS = (
    ("POST", "/v1/submit"),
    ("GET", "/v1/status"),
    ("GET", "/v1/fetch"),
    ("GET", "/v1/watch"),
    ("GET", "/v1/stats"),
    ("GET", "/v1/healthz"),
    ("POST", "/v1/shutdown"),
)


class ServiceError(ReproError):
    """A protocol-level failure: bad request, unknown key, quota, queue."""

    def __init__(self, message: str, *, status: int = 400):
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class JobSpec:
    """One submittable curve: a workload, a machine, and a size grid.

    This is the service's unit of work and deliberately mirrors the
    arguments of :func:`~repro.core.harness.measure_curve_fixed` — a job
    *is* one fixed-size sweep, whatever the engine tier.  ``run_id`` is
    the only field excluded from the content key: it overrides the
    journal id (for adopting a journal written by ``repro sweep``) and
    changes where progress is journaled, never what is computed.
    """

    workload: TargetSpec
    sizes_mb: tuple[float, ...]
    benchmark: str = ""
    machine: MachineConfig = field(default_factory=nehalem_config)
    pirate_threads: int = 1
    interval_instructions: float = DEFAULT_INTERVAL_INSTRUCTIONS
    n_intervals: int = 2
    warmup_instructions: float | None = None
    engine: str = "measure"
    seed: int = 0
    run_id: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.workload, TargetSpec):
            raise ConfigError("job workload must be a TargetSpec")
        if not self.sizes_mb:
            raise ConfigError("job needs at least one sweep size")
        if any(not s > 0 for s in self.sizes_mb):
            raise ConfigError(f"sweep sizes must be positive, got {self.sizes_mb}")
        if self.engine not in JOB_ENGINES:
            raise ConfigError(
                f"unknown job engine {self.engine!r}; known: {JOB_ENGINES}"
            )
        if self.pirate_threads < 1:
            raise ConfigError("pirate_threads must be >= 1")
        if self.n_intervals < 1:
            raise ConfigError("n_intervals must be >= 1")
        if not self.interval_instructions > 0:
            raise ConfigError("interval_instructions must be positive")

    def sweep_spec(self, *, telemetry_enabled: bool = False) -> SweepSpec:
        """The exact SweepSpec ``measure_curve_fixed`` would build.

        Field-for-field parity with the harness matters twice over: it
        makes service results bit-identical to the batch CLI, and it
        makes :func:`~repro.core.parallel.sweep_spec_sha` agree, so the
        server can resume a journal written by ``repro sweep`` and vice
        versa.  (``telemetry`` is excluded from the spec token, so the
        flag cannot fork keys.)
        """
        return SweepSpec(
            target=self.workload,
            benchmark=self.benchmark or self.workload.name or self.workload.kind,
            config=self.machine,
            num_pirate_threads=self.pirate_threads,
            interval_instructions=self.interval_instructions,
            n_intervals=self.n_intervals,
            warmup_instructions=self.warmup_instructions,
            threshold=DEFAULT_FETCH_RATIO_THRESHOLD,
            quantum=None,
            seed=self.seed,
            retry=None,
            fault_plan=None,
            telemetry=telemetry_enabled,
        )


def job_key(job: JobSpec) -> str:
    """Content key of a job: engine tier + the sweep identity it runs.

    Built on :func:`~repro.core.parallel.sweep_spec_sha` — the same hash
    the run journal pins — extended with the engine tier, because the
    measured and analytic answers for one sweep are different artifacts.
    ``run_id`` is excluded by construction.
    """
    token = {
        "engine": job.engine,
        "sweep_sha": sweep_spec_sha(job.sweep_spec(), list(job.sizes_mb)),
    }
    blob = json.dumps(token, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def job_to_wire(job: JobSpec) -> dict:
    """A JobSpec as pure-JSON data (nested dataclasses flattened)."""
    wire = asdict(job)
    wire["workload"] = asdict(job.workload)
    wire["machine"] = machine_to_dict(job.machine)
    wire["sizes_mb"] = list(job.sizes_mb)
    return wire


def job_from_wire(data: dict) -> JobSpec:
    """Rebuild and validate a JobSpec from :func:`job_to_wire` output.

    Every malformed shape — wrong types, unknown fields, semantic junk —
    surfaces as a single :class:`ServiceError` with HTTP status 400, so
    the server never turns a garbled request into a stack trace.
    """
    if not isinstance(data, dict):
        raise ServiceError(f"job must be a mapping, got {type(data).__name__}")
    known = {f.name for f in fields(JobSpec)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ServiceError(f"job: unknown field(s) {', '.join(map(repr, unknown))}")
    if "workload" not in data or "sizes_mb" not in data:
        raise ServiceError("job needs 'workload' and 'sizes_mb'")
    kwargs = dict(data)
    try:
        workload = kwargs["workload"]
        if not isinstance(workload, dict):
            raise ConfigError("job workload must be a mapping")
        kwargs["workload"] = TargetSpec(**workload)
        if "machine" in kwargs:
            kwargs["machine"] = machine_from_dict(kwargs["machine"])
        sizes = kwargs["sizes_mb"]
        if not isinstance(sizes, (list, tuple)):
            raise ConfigError("job sizes_mb must be a list")
        kwargs["sizes_mb"] = tuple(float(s) for s in sizes)
        return JobSpec(**kwargs)
    except ConfigError as e:
        raise ServiceError(f"job: {e}") from None
    except (TypeError, ValueError) as e:
        raise ServiceError(f"job: {e}") from None


def envelope(key: str | None = None, **payload) -> dict:
    """The success envelope every endpoint answers with.

    ``protocol`` and ``ok`` always lead; ``key`` carries the content key
    whenever the response concerns a job, so a client can re-submit (or
    re-fetch) anything it ever saw an answer for.
    """
    out = {"protocol": PROTOCOL_VERSION, "ok": True}
    if key is not None:
        out["key"] = key
    out.update(payload)
    return out


def error_envelope(message: str, *, status: int = 400) -> dict:
    """The failure envelope: same leading fields, ``ok`` false."""
    return {
        "protocol": PROTOCOL_VERSION,
        "ok": False,
        "error": str(message),
        "status": int(status),
    }


#: response fields that carry wall-clock or host-specific values; the
#: golden scenario zeroes these so envelopes stay deterministic
VOLATILE_FIELDS = ("elapsed_s", "uptime_s", "wall_s")


def normalize_envelope(data):
    """Recursively zero volatile fields (for goldens and tests)."""
    if isinstance(data, dict):
        return {
            k: (0.0 if k in VOLATILE_FIELDS else normalize_envelope(v))
            for k, v in data.items()
        }
    if isinstance(data, list):
        return [normalize_envelope(v) for v in data]
    return data
