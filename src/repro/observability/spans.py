"""Span-based instrumentation: what the harness did, when, inside what.

A :class:`Span` is one named region of harness work — a warm-up, a settle
co-run, one measurement interval, one sweep point — with **two clocks**:

* ``wall_s``: host wall time (``time.perf_counter``), the profiling view.
  Wall time is never deterministic and is therefore zeroed out of golden
  comparisons and excluded from the measurement half of summaries.
* ``cycles``: *simulated-machine* cycles, attributed explicitly by the
  harness (``span.add_cycles(machine.frontier - t0)``).  Cycle attribution
  is a pure function of the measurement inputs, so it is bit-identical
  between serial and parallel runs of the same sweep.

The :class:`SpanRecorder` keeps the open-span stack (nesting is positional:
a span started while another is open becomes its child) and appends plain
JSON-ready dict records to an event list: a ``span_start`` record when a
span opens, a ``span_end`` record when it closes, and ``event`` records for
point annotations (a retry escalation, a cache hit, an injected fault).
Every start is guaranteed one end — spans are context managers, and even an
exception unwinds through ``__exit__`` — which is the balance invariant
``tests/test_observability_props.py`` pins.
"""

from __future__ import annotations

import time


class Span:
    """One open (or closed) instrumentation region.

    Use as a context manager::

        with recorder.span("interval", size_mb=4.0) as sp:
            ...  # run the machine
            sp.add_cycles(machine.frontier - t0)

    Attributes may be annotated any time before export; ``cycles``
    accumulates across :meth:`add_cycles` calls (a retried interval
    attributes every attempt to the same span).
    """

    __slots__ = ("recorder", "name", "span_id", "parent_id", "depth", "attrs",
                 "cycles", "wall_s", "_t0", "closed")

    def __init__(self, recorder: "SpanRecorder", name: str, attrs: dict):
        self.recorder = recorder
        self.name = name
        self.span_id: int | None = None  # assigned when the span opens
        self.parent_id: int | None = None
        self.depth = 0
        self.attrs = attrs
        self.cycles = 0.0
        self.wall_s = 0.0
        self._t0 = 0.0
        self.closed = False

    def annotate(self, **attrs) -> None:
        """Attach or update attributes on this span."""
        self.attrs.update(attrs)

    def add_cycles(self, cycles: float) -> None:
        """Attribute simulated-machine cycles to this span (accumulates)."""
        self.cycles += cycles

    def __enter__(self) -> "Span":
        self.recorder._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.recorder._close(self, error=exc_type.__name__ if exc_type else None)


class SpanRecorder:
    """Owns the open-span stack and the flat event stream.

    Records are plain dicts (see the JSONL schema in docs/API.md), appended
    in program order: a ``span_start`` on open, interleaved ``event``
    records, a ``span_end`` on close.  IDs are sequential per recorder;
    :meth:`absorb` splices a child recorder's stream in with IDs re-based,
    parenting the child's root spans under the currently open span.
    """

    def __init__(self) -> None:
        self.records: list[dict] = []
        self._stack: list[Span] = []
        self._next_id = 0

    # -- the public surface ---------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        """A new span, opened on ``__enter__`` under the current span."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """A point annotation inside the currently open span (or at root)."""
        self.records.append({
            "type": "event",
            "id": self._take_id(),
            "span": self._stack[-1].span_id if self._stack else None,
            "name": name,
            "attrs": attrs,
        })

    @property
    def open_depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    # -- span lifecycle -------------------------------------------------------------

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id - 1

    def _open(self, span: Span) -> None:
        if span.closed or span.span_id is not None:
            raise ValueError(f"span {span.name!r} cannot be reopened")
        span.span_id = self._take_id()
        span.parent_id = self._stack[-1].span_id if self._stack else None
        span.depth = len(self._stack)
        span._t0 = time.perf_counter()
        self._stack.append(span)
        self.records.append({
            "type": "span_start",
            "id": span.span_id,
            "parent": span.parent_id,
            "depth": span.depth,
            "name": span.name,
            "attrs": span.attrs,
        })

    def _close(self, span: Span, error: str | None = None) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ValueError(
                f"span {span.name!r} closed out of order (open: "
                f"{[s.name for s in self._stack]})"
            )
        self._stack.pop()
        span.closed = True
        span.wall_s = time.perf_counter() - span._t0
        record = {
            "type": "span_end",
            "id": span.span_id,
            "name": span.name,
            "cycles": span.cycles,
            "wall_s": span.wall_s,
        }
        if error is not None:
            record["error"] = error
        self.records.append(record)

    # -- merging worker-side streams ------------------------------------------------

    def absorb(self, records: list[dict]) -> None:
        """Splice a child recorder's stream in, re-based onto this one.

        IDs are offset past every ID this recorder has handed out, root
        spans are re-parented under the currently open span, and depths are
        shifted accordingly — so a point measured in a pool worker shows up
        nested under the parent's sweep span exactly as a serially measured
        point would.
        """
        if not records:
            return
        offset = self._next_id
        base_parent = self._stack[-1].span_id if self._stack else None
        base_depth = len(self._stack)
        max_id = -1
        for r in records:
            r = dict(r)
            r["id"] = r["id"] + offset
            max_id = max(max_id, r["id"])
            if r["type"] == "span_start":
                r["parent"] = base_parent if r["parent"] is None else r["parent"] + offset
                r["depth"] = r["depth"] + base_depth
            elif r["type"] == "event":
                r["span"] = base_parent if r.get("span") is None else r["span"] + offset
            self.records.append(r)
        self._next_id = max_id + 1
