"""Run telemetry for the measurement engine: spans, metrics, event export.

After the resilience engine (retries, degradation) and the parallel engine
(pooling, caching) the harness makes runtime decisions that are invisible in
its return values — how many intervals the §III-B2 fetch-ratio check
rejected, how far warm-ups escalated, which points came from the sweep
cache, how busy the pool workers were.  This package makes every one of
those decisions observable without changing a single measured number:

* :mod:`~repro.observability.spans` — nested :class:`Span` instrumentation
  with dual wall-time / simulated-cycle attribution,
* :mod:`~repro.observability.metrics` — a typed registry of counters,
  high-watermark gauges, and fixed-bucket histograms whose merges are
  order-independent,
* :mod:`~repro.observability.telemetry` — the :class:`Telemetry` facade the
  harnesses call, its zero-cost :data:`NULL_TELEMETRY` stand-in, and the
  picklable :class:`TelemetryFragment` that carries a pool worker's
  telemetry back to the parent,
* :mod:`~repro.observability.export` — the JSONL event stream
  (``--telemetry out.jsonl``), the aggregated two-part summary
  (measurement vs execution), and the ``repro stats`` report renderer.

Guarantees, under test in ``tests/test_observability_props.py``:
telemetry is a pure *observer* (enabling it changes no measured value, no
seed, no cache key); span streams always balance; and serial vs parallel
runs of the same sweep aggregate to the same measurement summary.
"""

from .metrics import EXEC_PREFIX, Histogram, MetricsRegistry, metric_key
from .spans import Span, SpanRecorder
from .telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetryFragment,
    ensure_telemetry,
)
from .export import SCHEMA_VERSION, format_report, read_jsonl, summarize, write_jsonl

__all__ = [
    "EXEC_PREFIX",
    "Histogram",
    "MetricsRegistry",
    "metric_key",
    "Span",
    "SpanRecorder",
    "Telemetry",
    "TelemetryFragment",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "ensure_telemetry",
    "SCHEMA_VERSION",
    "write_jsonl",
    "read_jsonl",
    "summarize",
    "format_report",
]
