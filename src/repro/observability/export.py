"""Exporting telemetry: the JSONL event stream and the aggregated summary.

Two output shapes serve two consumers:

* :func:`write_jsonl` — the full event stream, one JSON object per line
  (schema in docs/API.md): a ``meta`` header, every ``span_start`` /
  ``span_end`` / ``event`` record in program order, then a ``metric``
  snapshot line per metric.  This is the machine-readable artifact
  ``repro sweep --telemetry out.jsonl`` leaves behind and CI uploads.
* :func:`summarize` — the aggregated run report, split into a
  **measurement** half (retries, settle ticks, cache hits, per-span-name
  counts and simulated-cycle totals — a pure function of the sweep's
  inputs, identical between serial and parallel runs) and an **execution**
  half (wall times, pool spawns, worker utilization — honest observations
  about *this* run's scheduling that no golden may compare).  With
  ``deterministic=True`` every wall-clock-derived field is zeroed, which is
  the form the telemetry-summary golden pins.

The split rule is mechanical: metric and span names starting with ``exec_``
are execution-side, as is every ``wall_s`` field.
"""

from __future__ import annotations

import json
from pathlib import Path

from .metrics import MetricsRegistry, base_name, is_exec_metric
from .telemetry import Telemetry

#: Bump when the JSONL line layout changes.
SCHEMA_VERSION = 1


def write_jsonl(telemetry: Telemetry, path: str | Path) -> None:
    """Write ``telemetry``'s full stream to ``path`` as JSON Lines."""
    path = Path(path)
    snapshot = telemetry.metrics.to_dict()
    with path.open("w") as fh:
        fh.write(json.dumps({"type": "meta", "schema": SCHEMA_VERSION}) + "\n")
        for record in telemetry.spans.records:
            fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        for kind in ("counters", "gauges"):
            for name, value in snapshot[kind].items():
                fh.write(json.dumps({
                    "type": "metric", "kind": kind[:-1], "name": name, "value": value,
                }, sort_keys=True) + "\n")
        for name, hist in snapshot["histograms"].items():
            fh.write(json.dumps({
                "type": "metric", "kind": "histogram", "name": name, "hist": hist,
            }, sort_keys=True) + "\n")


def read_jsonl(path: str | Path) -> tuple[list[dict], MetricsRegistry]:
    """Parse a stream written by :func:`write_jsonl`.

    Returns the span/event records plus the reconstructed registry.
    Raises ``ValueError`` on a malformed line or an unknown schema.
    """
    records: list[dict] = []
    payload = {"counters": {}, "gauges": {}, "histograms": {}}
    for i, line in enumerate(Path(path).read_text().splitlines()):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            raise ValueError(f"{path}:{i + 1}: not JSON ({e})") from None
        kind = obj.get("type")
        if kind == "meta":
            if obj.get("schema") != SCHEMA_VERSION:
                raise ValueError(
                    f"{path}: schema {obj.get('schema')!r} != {SCHEMA_VERSION}"
                )
        elif kind in ("span_start", "span_end", "event"):
            records.append(obj)
        elif kind == "metric":
            if obj["kind"] == "histogram":
                payload["histograms"][obj["name"]] = obj["hist"]
            else:
                payload[obj["kind"] + "s"][obj["name"]] = obj["value"]
        else:
            raise ValueError(f"{path}:{i + 1}: unknown record type {kind!r}")
    return records, MetricsRegistry.from_dict(payload)


def _split(snapshot: dict) -> tuple[dict, dict]:
    """(measurement, execution) halves of a metrics snapshot."""
    meas = {"counters": {}, "gauges": {}, "histograms": {}}
    execu = {"counters": {}, "gauges": {}, "histograms": {}}
    for kind in meas:
        for key, value in snapshot[kind].items():
            (execu if is_exec_metric(key) else meas)[kind][key] = value
    return meas, execu


def summarize(
    source: Telemetry | tuple[list[dict], MetricsRegistry],
    *,
    deterministic: bool = False,
) -> dict:
    """Aggregate a telemetry stream into the two-part run summary.

    ``source`` is a live :class:`Telemetry` or the ``(records, registry)``
    pair from :func:`read_jsonl`.  ``deterministic=True`` zeroes every
    wall-clock-derived field (``wall_s`` totals and ``*utilization*``
    gauges) so the result is a pure function of the measurement inputs —
    the form goldens compare and the serial-vs-parallel equivalence tests
    assert on.
    """
    if isinstance(source, Telemetry):
        records, registry = source.spans.records, source.metrics
    else:
        records, registry = source
    meas_metrics, exec_metrics = _split(registry.to_dict())

    span_counts: dict[str, dict] = {}
    exec_spans: dict[str, dict] = {}
    event_counts: dict[str, int] = {}
    exec_events: dict[str, int] = {}
    unbalanced = 0
    for r in records:
        name = r["name"]
        is_exec = base_name(name).startswith("exec_")
        if r["type"] == "span_start":
            unbalanced += 1
        elif r["type"] == "span_end":
            unbalanced -= 1
            agg = (exec_spans if is_exec else span_counts).setdefault(
                name, {"count": 0, "cycles": 0.0, "wall_s": 0.0}
            )
            agg["count"] += 1
            agg["cycles"] += r.get("cycles", 0.0)
            agg["wall_s"] += r.get("wall_s", 0.0)
        elif r["type"] == "event":
            bucket = exec_events if is_exec else event_counts
            bucket[name] = bucket.get(name, 0) + 1

    wall_total = sum(a["wall_s"] for a in span_counts.values()) + sum(
        a["wall_s"] for a in exec_spans.values()
    )
    # measurement spans report only deterministic fields; their wall time
    # moves to the execution half's per-name map
    meas_spans = {
        n: {"count": a["count"], "cycles": a["cycles"]}
        for n, a in sorted(span_counts.items())
    }
    span_wall = {
        n: a["wall_s"]
        for n, a in sorted({**span_counts, **exec_spans}.items())
    }
    summary = {
        "schema": SCHEMA_VERSION,
        "measurement": {
            **meas_metrics,
            "spans": meas_spans,
            "events": {n: event_counts[n] for n in sorted(event_counts)},
            "unbalanced_spans": unbalanced,
        },
        "execution": {
            **exec_metrics,
            "spans": {n: dict(exec_spans[n]) for n in sorted(exec_spans)},
            "events": {n: exec_events[n] for n in sorted(exec_events)},
            "span_wall_s": span_wall,
            "wall_s_total": wall_total,
        },
    }
    if deterministic:
        execu = summary["execution"]
        execu["wall_s_total"] = 0.0
        for agg in execu["spans"].values():
            agg["wall_s"] = 0.0
        execu["span_wall_s"] = {n: 0.0 for n in execu["span_wall_s"]}
        for key in execu["gauges"]:
            if "utilization" in base_name(key):
                execu["gauges"][key] = 0.0
    return summary


def format_report(summary: dict) -> str:
    """Human-readable run report for ``repro stats``."""
    meas, execu = summary["measurement"], summary["execution"]
    lines = ["# telemetry run report"]

    def metric_rows(section: dict, title: str) -> None:
        counters, gauges, hists = section["counters"], section["gauges"], section["histograms"]
        if not (counters or gauges or hists):
            return
        lines.append(f"-- {title}")
        for name, v in counters.items():
            lines.append(f"{name:44s} {v:12g}")
        for name, v in gauges.items():
            lines.append(f"{name:44s} {v:12.3f}  (gauge)")
        for name, h in hists.items():
            mean = h["total"] / h["count"] if h["count"] else 0.0
            lines.append(
                f"{name:44s} n={h['count']:<6d} mean={mean:<12g} "
                f"min={h['min']:g} max={h['max']:g}"
            )

    metric_rows(meas, "measurement metrics")
    metric_rows(execu, "execution metrics")

    all_spans = list(meas["spans"].items()) + list(execu["spans"].items())
    if all_spans:
        lines.append("-- spans")
        lines.append(f"{'name':30s} {'count':>7} {'sim cycles':>14} {'wall s':>10}")
        for name, agg in all_spans:
            wall = execu.get("span_wall_s", {}).get(name, 0.0)
            lines.append(
                f"{name:30s} {agg['count']:7d} {agg['cycles']:14.0f} {wall:10.3f}"
            )

    events = {**meas["events"], **execu["events"]}
    if events:
        lines.append("-- events")
        for name, n in events.items():
            lines.append(f"{name:44s} {n:7d}")
    if meas.get("unbalanced_spans"):
        lines.append(f"WARNING: {meas['unbalanced_spans']} span(s) never closed")
    lines.append(f"total instrumented wall time: {execu['wall_s_total']:.3f}s")
    return "\n".join(lines)
