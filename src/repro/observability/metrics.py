"""Typed run metrics: counters, gauges and histograms.

The registry is the numeric half of the telemetry layer (spans are the
structural half, :mod:`repro.observability.spans`).  Every harness decision
the resilience and parallel engines make at runtime — a retry escalation, a
settle co-run, a sweep-cache hit, a degraded point — lands here as a named
metric, so a finished run can answer "how many intervals did the fetch-ratio
check reject?" without re-running anything.

Aggregation is **order-independent by construction**, because sweeps merge
worker-side registries in whatever order is convenient and the merged result
must not depend on completion order:

* counters add,
* gauges keep the maximum (they are high-watermark gauges — e.g. the deepest
  retry attempt seen),
* histograms have *fixed* bucket bounds and merge by summing bucket counts
  and totals and combining min/max.

``tests/test_observability_props.py`` pins these merge laws with hypothesis.

Names are plain strings; optional labels are folded into the name as a
canonical ``name{k=v,...}`` suffix with sorted keys.  Names starting with
``exec_`` describe the *execution* (pool spawns, worker utilization) rather
than the *measurement*, and are excluded from the deterministic half of the
exported summary — see :mod:`repro.observability.export`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: 1-2-5 decade series: fixed bounds make histogram merges order-independent.
DEFAULT_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    m * 10.0**e for e in range(0, 10) for m in (1.0, 2.0, 5.0)
)

#: Prefix marking execution-side metrics (pool spawns, utilization, chunks):
#: real observations about *this* run's scheduling, deliberately excluded
#: from the deterministic measurement summary that goldens compare.
EXEC_PREFIX = "exec_"


def metric_key(name: str, labels: dict | None = None) -> str:
    """Canonical registry key: ``name`` or ``name{k=v,...}`` with sorted keys."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def base_name(key: str) -> str:
    """The metric name of a registry key, with any label suffix stripped."""
    brace = key.find("{")
    return key if brace < 0 else key[:brace]


def is_exec_metric(key: str) -> bool:
    """True for execution-side metrics (``exec_`` prefix)."""
    return base_name(key).startswith(EXEC_PREFIX)


@dataclass
class Histogram:
    """A mergeable fixed-bucket histogram.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; one overflow
    bucket counts the rest.  Because every histogram of a given name shares
    :data:`DEFAULT_BUCKET_BOUNDS`, merging two histograms is a pure
    element-wise sum — no rebinning, no order dependence.
    """

    bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS
    bucket_counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def __post_init__(self) -> None:
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (commutative, associative)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for i, c in enumerate(other.bucket_counts):
            self.bucket_counts[i] += c

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """JSON-stable snapshot (empty histograms drop the infinite min/max)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": {
                f"le_{bound:g}": n
                for bound, n in zip(self.bounds, self.bucket_counts)
                if n
            }
            | ({"overflow": self.bucket_counts[-1]} if self.bucket_counts[-1] else {}),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        h = cls()
        h.count = payload["count"]
        h.total = payload["total"]
        if h.count:
            h.min = payload["min"]
            h.max = payload["max"]
        by_bound = payload.get("buckets", {})
        for i, bound in enumerate(h.bounds):
            h.bucket_counts[i] = by_bound.get(f"le_{bound:g}", 0)
        h.bucket_counts[-1] = by_bound.get("overflow", 0)
        return h


class MetricsRegistry:
    """The typed metric store one telemetry collector owns.

    Plain dicts keyed by :func:`metric_key`; picklable, so a registry built
    inside a pool worker rides back to the parent inside a
    :class:`~repro.observability.telemetry.TelemetryFragment`.
    """

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        """Add ``value`` to the counter ``name`` (created at 0)."""
        key = metric_key(name, labels)
        self.counters[key] = self.counters.get(key, 0.0) + value

    def gauge(self, name: str, value: float, **labels) -> None:
        """Record a high-watermark gauge: the largest value set wins."""
        key = metric_key(name, labels)
        prior = self.gauges.get(key)
        self.gauges[key] = value if prior is None else max(prior, value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Add one observation to the histogram ``name``."""
        key = metric_key(name, labels)
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = Histogram()
        hist.observe(value)

    def counter_value(self, name: str, **labels) -> float:
        """Current value of a counter (0 if never incremented)."""
        return self.counters.get(metric_key(name, labels), 0.0)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in; commutative and associative per metric."""
        for key, v in other.counters.items():
            self.counters[key] = self.counters.get(key, 0.0) + v
        for key, v in other.gauges.items():
            prior = self.gauges.get(key)
            self.gauges[key] = v if prior is None else max(prior, v)
        for key, h in other.histograms.items():
            mine = self.histograms.get(key)
            if mine is None:
                mine = self.histograms[key] = Histogram(bounds=h.bounds)
            mine.merge(h)

    def to_dict(self) -> dict:
        """Sorted, JSON-stable snapshot of every metric."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_dict() for k in sorted(self.histograms)
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsRegistry":
        reg = cls()
        reg.counters.update(payload.get("counters", {}))
        reg.gauges.update(payload.get("gauges", {}))
        for key, h in payload.get("histograms", {}).items():
            reg.histograms[key] = Histogram.from_dict(h)
        return reg
