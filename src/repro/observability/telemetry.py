"""The telemetry facade the harnesses talk to.

One :class:`Telemetry` object bundles the two halves of the observability
layer — a :class:`~repro.observability.spans.SpanRecorder` and a
:class:`~repro.observability.metrics.MetricsRegistry` — behind the small
surface instrumented code calls: ``span``, ``event``, ``count``, ``gauge``,
``observe``.

Two properties the measurement engine depends on:

* **Zero cost when disabled.**  Every harness entry point defaults to the
  :data:`NULL_TELEMETRY` singleton, whose methods do nothing and whose
  spans are one shared inert object — an uninstrumented run allocates no
  records, no registries, nothing per interval.
* **Picklable across worker boundaries.**  A pool worker measuring a sweep
  point collects into its own ``Telemetry`` and ships the result back as a
  :class:`TelemetryFragment` (plain records + a metrics snapshot) riding on
  the :class:`~repro.core.parallel.PointResult`.  The parent absorbs
  fragments in *point-index order*, so the merged stream and the aggregated
  summary are independent of completion order — serial and parallel runs of
  the same sweep aggregate identically (modulo wall-clock timing fields).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .metrics import MetricsRegistry
from .spans import Span, SpanRecorder


@dataclass
class TelemetryFragment:
    """A collector's transportable state: records plus a metrics snapshot.

    Pure data (dicts, lists, floats), so it pickles across process
    boundaries and JSON-serializes without custom hooks.
    """

    records: list[dict] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)


class Telemetry:
    """A live telemetry collector (spans + metrics + events)."""

    enabled = True

    def __init__(self) -> None:
        self.spans = SpanRecorder()
        self.metrics = MetricsRegistry()

    # -- instrumentation surface ----------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        """A nested span; open it with ``with``."""
        return self.spans.span(name, **attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a point annotation inside the current span."""
        self.spans.event(name, **attrs)

    def count(self, name: str, value: float = 1.0, **labels) -> None:
        """Increment the counter ``name`` by ``value``."""
        self.metrics.inc(name, value, **labels)

    def gauge(self, name: str, value: float, **labels) -> None:
        """Record a high-watermark gauge."""
        self.metrics.gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels) -> None:
        """Add an observation to the histogram ``name``."""
        self.metrics.observe(name, value, **labels)

    # -- worker transport -----------------------------------------------------------

    def fragment(self) -> TelemetryFragment:
        """This collector's state as transportable pure data."""
        return TelemetryFragment(
            records=list(self.spans.records), metrics=self.metrics.to_dict()
        )

    def absorb(self, fragment: TelemetryFragment | None) -> None:
        """Merge a child collector's fragment into this one.

        Records are spliced under the currently open span (IDs re-based);
        metrics merge per the registry's order-independent laws.
        """
        if fragment is None:
            return
        self.spans.absorb(fragment.records)
        self.metrics.merge(MetricsRegistry.from_dict(fragment.metrics))

    # -- export ---------------------------------------------------------------------

    def summary(self, *, deterministic: bool = False) -> dict:
        """Aggregated run summary; see :func:`repro.observability.export.summarize`."""
        from .export import summarize

        return summarize(self, deterministic=deterministic)

    def export_jsonl(self, path) -> None:
        """Write the full event stream (plus a metrics snapshot) as JSONL."""
        from .export import write_jsonl

        write_jsonl(self, path)


class _NullSpan:
    """The shared inert span handed out by :class:`NullTelemetry`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def annotate(self, **attrs) -> None:
        return None

    def add_cycles(self, cycles: float) -> None:
        return None


_NULL_SPAN = _NullSpan()


def _null_telemetry() -> "NullTelemetry":
    return NULL_TELEMETRY


class NullTelemetry:
    """The do-nothing collector installed when telemetry is off.

    Every method is a no-op and :meth:`span` returns one shared inert
    object, so instrumented code pays a method call and nothing else.
    Pickles to the singleton, so a disabled telemetry crossing a worker
    boundary stays disabled (and stays a singleton) on the other side.
    """

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        return None

    def count(self, name: str, value: float = 1.0, **labels) -> None:
        return None

    def gauge(self, name: str, value: float, **labels) -> None:
        return None

    def observe(self, name: str, value: float, **labels) -> None:
        return None

    def fragment(self) -> None:
        return None

    def absorb(self, fragment) -> None:
        return None

    def summary(self, *, deterministic: bool = False) -> dict:
        return {}

    def __reduce__(self):
        return (_null_telemetry, ())


#: The process-wide disabled collector; harnesses default to this.
NULL_TELEMETRY = NullTelemetry()


def ensure_telemetry(telemetry: Telemetry | NullTelemetry | None):
    """``telemetry`` itself, or the null collector for ``None``."""
    return NULL_TELEMETRY if telemetry is None else telemetry
