"""Trace replay through the modelled cache hierarchy.

Deliberately reuses :class:`~repro.caches.CacheHierarchy` — the paper's
reference simulator "models the Nehalem cache hierarchy to the best of our
knowledge" (Table I), and this library's knowledge *is* that class.  The
experiments compare Pirate-measured curves (cache shrunk by way competition
at runtime) against these trace-driven curves (cache shrunk by
configuration), which is precisely the paper's §III-B validation.

Prefetching defaults to *off*: the authors disabled the hardware
prefetchers they could for this comparison and calibrated away the rest
(§III-B1); :mod:`repro.reference.calibrate` provides the offset step.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..caches.hierarchy import CacheHierarchy
from ..config import MachineConfig, nehalem_config
from ..errors import TraceError
from ..tracing.trace import AddressTrace

#: replay chunk size (accesses)
_CHUNK = 65_536


@dataclass
class ReferencePoint:
    """Simulated steady-state ratios for one cache configuration."""

    benchmark: str
    cache_bytes: int
    ways: int
    fetch_ratio: float
    miss_ratio: float
    fetches: int
    misses: int
    accesses: float
    policy: str


def single_core_config(
    base: MachineConfig | None = None,
    *,
    l3_ways: int | None = None,
    l3_size: int | None = None,
    policy: str | None = None,
    prefetch: bool = False,
) -> MachineConfig:
    """Derive a single-core hierarchy config for trace replay.

    ``l3_ways`` shrinks the L3 by way reduction (same sets — the Pirate-
    equivalent geometry); ``l3_size`` shrinks it at constant associativity
    (footnote 3's ablation).  ``policy`` selects "nru" (Nehalem) or "lru".
    """
    base = base or nehalem_config()
    l3 = base.l3
    if policy is not None:
        l3 = replace(l3, policy=policy)
    if l3_ways is not None and l3_size is not None:
        raise TraceError("choose way reduction or size reduction, not both")
    if l3_ways is not None:
        l3 = l3.with_ways(l3_ways)
    if l3_size is not None:
        l3 = l3.with_size_same_assoc(l3_size)
    # the oracle always replays exactly: set sampling is a measurement-side
    # approximation, and validating it requires an unsampled reference
    return replace(
        base, num_cores=1, l3=l3, prefetch_enabled=prefetch, sample_sets=1
    )


def simulate_trace(
    trace: AddressTrace,
    config: MachineConfig,
    *,
    warmup_fraction: float = 0.25,
    seed: int = 0,
) -> ReferencePoint:
    """Replay a trace through the hierarchy; count the post-warm-up window.

    The first ``warmup_fraction`` of the trace populates the caches without
    being counted, reducing (not eliminating — see the calibration module)
    cold-start bias in short traces.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise TraceError("warmup_fraction must be in [0, 1)")
    hierarchy = CacheHierarchy(config, seed=seed)
    n = len(trace)
    split = int(n * warmup_fraction)

    def replay(lo: int, hi: int) -> None:
        for start in range(lo, hi, _CHUNK):
            stop = min(start + _CHUNK, hi)
            writes = None if trace.writes is None else trace.writes[start:stop]
            hierarchy.access_chunk(0, trace.lines[start:stop], writes)

    replay(0, split)
    before_fetches = hierarchy.totals[0].l3_fetches
    before_misses = hierarchy.totals[0].l3_misses
    replay(split, n)
    totals = hierarchy.totals[0]
    fetches = totals.l3_fetches - before_fetches
    misses = totals.l3_misses - before_misses
    counted_lines = n - split
    accesses = counted_lines * trace.accesses_per_line
    return ReferencePoint(
        benchmark=trace.benchmark,
        cache_bytes=config.l3.size,
        ways=config.l3.ways,
        fetch_ratio=fetches / accesses if accesses else 0.0,
        miss_ratio=misses / accesses if accesses else 0.0,
        fetches=fetches,
        misses=misses,
        accesses=accesses,
        policy=config.l3.policy,
    )
