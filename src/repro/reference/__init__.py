"""Trace-driven reference cache simulation (§III-B).

The paper validates Cache Pirating by comparing its fetch-ratio curves
against an address-trace-driven simulator of the Table I hierarchy, swept
across cache sizes.  This package is that simulator: trace replay through
the same :class:`~repro.caches.CacheHierarchy` the machine uses
(:mod:`repro.reference.cachesim`), cache-size sweeps by way reduction — with
the constant-associativity variant of footnote 3 — (:mod:`repro.reference.
sweep`), and the baseline-offset calibration the paper applies to correct
cold-start and residual-prefetcher effects (:mod:`repro.reference.calibrate`).
"""

from .cachesim import ReferencePoint, simulate_trace
from .sweep import ReferenceCurve, reference_curve
from .calibrate import apply_offset, calibrate_offset, measure_baseline_fetch_ratio

__all__ = [
    "ReferencePoint",
    "simulate_trace",
    "ReferenceCurve",
    "reference_curve",
    "calibrate_offset",
    "apply_offset",
    "measure_baseline_fetch_ratio",
]
