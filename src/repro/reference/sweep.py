"""Cache-size sweeps for reference curves.

Default mode shrinks the L3 by *way reduction* at a constant set count —
the geometry the Pirate induces (§II-A: co-runners contend for ways, so the
Target effectively sees lower associativity).  Footnote 3's ablation,
constant associativity with fewer sets, is also provided; the paper found
the two agree above four ways for everything except LBM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import MachineConfig, nehalem_config
from ..errors import TraceError
from ..tracing.trace import AddressTrace
from ..units import MB
from .cachesim import ReferencePoint, simulate_trace, single_core_config


@dataclass
class ReferenceCurve:
    """Reference fetch/miss ratios as a function of cache size."""

    benchmark: str
    policy: str
    mode: str
    points: list[ReferencePoint] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.points.sort(key=lambda p: p.cache_bytes)

    @property
    def cache_mb(self) -> np.ndarray:
        return np.array([p.cache_bytes / MB for p in self.points])

    @property
    def fetch_ratio(self) -> np.ndarray:
        return np.array([p.fetch_ratio for p in self.points])

    @property
    def miss_ratio(self) -> np.ndarray:
        return np.array([p.miss_ratio for p in self.points])

    def fetch_ratio_at(self, cache_mb: float) -> float:
        """Interpolated fetch ratio at an arbitrary size."""
        return float(np.interp(cache_mb, self.cache_mb, self.fetch_ratio))

    def miss_ratio_at(self, cache_mb: float) -> float:
        """Interpolated miss ratio at an arbitrary size."""
        return float(np.interp(cache_mb, self.cache_mb, self.miss_ratio))

    def shifted(self, offset: float) -> "ReferenceCurve":
        """Curve with ``offset`` added to every fetch ratio (calibration)."""
        pts = [
            ReferencePoint(
                benchmark=p.benchmark,
                cache_bytes=p.cache_bytes,
                ways=p.ways,
                fetch_ratio=max(p.fetch_ratio + offset, 0.0),
                miss_ratio=p.miss_ratio,
                fetches=p.fetches,
                misses=p.misses,
                accesses=p.accesses,
                policy=p.policy,
            )
            for p in self.points
        ]
        return ReferenceCurve(self.benchmark, self.policy, self.mode, pts)


def _way_grid(base: MachineConfig, sizes_mb: list[float]) -> list[int]:
    way_bytes = base.l3.size // base.l3.ways
    ways = []
    for size in sizes_mb:
        w = int(round(size * MB / way_bytes))
        if w < 1 or w > base.l3.ways:
            raise TraceError(f"size {size}MB not representable by way reduction")
        if abs(w * way_bytes - size * MB) > 1e-6 * MB:
            raise TraceError(f"size {size}MB is not a whole number of ways")
        ways.append(w)
    return ways


def reference_curve(
    trace: AddressTrace,
    sizes_mb: list[float],
    *,
    base_config: MachineConfig | None = None,
    policy: str = "nru",
    mode: str = "ways",
    prefetch: bool = False,
    warmup_fraction: float = 0.25,
    seed: int = 0,
) -> ReferenceCurve:
    """Sweep cache sizes and replay the trace at each.

    ``policy`` selects the L3 replacement model ("nru" is the Nehalem-
    specific simulator, "lru" the generic one — Fig. 4 contrasts them);
    ``mode`` is "ways" (default) or "sets" (footnote 3).
    """
    base = base_config or nehalem_config()
    if mode not in ("ways", "sets"):
        raise TraceError(f"unknown sweep mode {mode!r}")
    points = []
    if mode == "ways":
        for ways in _way_grid(base, sizes_mb):
            cfg = single_core_config(base, l3_ways=ways, policy=policy, prefetch=prefetch)
            points.append(
                simulate_trace(trace, cfg, warmup_fraction=warmup_fraction, seed=seed)
            )
    else:
        for size in sizes_mb:
            nbytes = int(size * MB)
            if nbytes % (base.l3.ways * base.l3.line_size) != 0:
                raise TraceError(f"size {size}MB not representable at constant assoc")
            cfg = single_core_config(base, l3_size=nbytes, policy=policy, prefetch=prefetch)
            points.append(
                simulate_trace(trace, cfg, warmup_fraction=warmup_fraction, seed=seed)
            )
    return ReferenceCurve(benchmark=trace.benchmark, policy=policy, mode=mode, points=points)
