"""Simulated hardware threads.

A :class:`SimThread` binds a workload to a core, tracks its virtual clock and
retired-instruction count, and converts scheduler quanta into memory-access
chunks.  Threads can be suspended and resumed — the Fig. 5 dynamic-adjustment
schedule halts the Target while the Pirate warms its grown working set and
vice versa — and pinned threads never migrate (§III-A pins the Target and the
Pirate to disjoint cores).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class WorkloadLike(Protocol):
    """What the machine needs from a workload.

    Implementations live in :mod:`repro.workloads`; the Pirate in
    :mod:`repro.core.pirate` implements the same protocol.
    """

    #: human-readable identifier (benchmark name)
    name: str
    #: memory accesses per instruction
    mem_fraction: float
    #: cycles per instruction spent outside the modelled miss stalls
    cpi_base: float
    #: memory-level parallelism divisor for miss stalls
    mlp: float
    #: architectural accesses represented by each emitted line address
    #: (sequential word-granularity code touches a 64B line several times;
    #: only the line-granularity stream is simulated, see workloads.base)
    accesses_per_line: float
    #: route accesses straight to the L3 (Pirate-only fast path; exact when
    #: the reuse distance exceeds private-cache capacity)
    bypass_private: bool

    def chunk(self, n_lines: int) -> tuple[np.ndarray, np.ndarray | None]:
        """Produce the next ``n_lines`` line addresses (and optional writes)."""
        ...


class SimThread:
    """One software thread pinned to one core of the simulated machine."""

    def __init__(
        self,
        thread_id: int,
        workload: WorkloadLike,
        core: int,
        *,
        instruction_limit: float | None = None,
    ):
        self.thread_id = thread_id
        self.workload = workload
        self.core = core
        #: virtual time (cycles); the scheduler keeps runnable threads loosely
        #: synchronized by always advancing the laggard
        self.clock = 0.0
        #: retired instructions
        self.instructions = 0.0
        #: stop once this many instructions retire (None = run forever)
        self.instruction_limit = instruction_limit
        self.finished = False
        self.suspended = False
        #: observed CPI of the last quantum (used to size the next quantum)
        self.cpi_estimate = max(workload.cpi_base, 0.1)
        #: fractional line-address carry between quanta
        self._line_carry = 0.0

    @property
    def runnable(self) -> bool:
        return not self.finished and not self.suspended

    def plan_quantum(self, quantum_cycles: float) -> tuple[float, int]:
        """Plan a quantum of roughly ``quantum_cycles``.

        Returns ``(instructions, n_lines)``: instructions ≈ cycles /
        cpi_estimate (clamped to the remaining instruction budget); line
        addresses = instructions * mem_fraction / accesses_per_line, with a
        fractional carry so long-run averages are exact.
        """
        wl = self.workload
        instr = quantum_cycles / self.cpi_estimate
        if self.instruction_limit is not None:
            instr = min(instr, self.instruction_limit - self.instructions)
        if instr <= 0.0:
            return 0.0, 0
        lines = instr * wl.mem_fraction / wl.accesses_per_line + self._line_carry
        n = int(lines)
        self._line_carry = lines - n
        return instr, max(n, 0)

    def retire(self, instructions: float, cycles: float) -> None:
        """Account a completed quantum."""
        self.instructions += instructions
        self.clock += cycles
        if instructions > 0:
            self.cpi_estimate = cycles / instructions
        if (
            self.instruction_limit is not None
            and self.instructions >= self.instruction_limit - 0.5
        ):
            self.finished = True

    def suspend(self) -> None:
        self.suspended = True

    def resume(self, now: float) -> None:
        """Wake the thread; its clock jumps to the current global time so the
        suspension consumed wall time without retiring instructions."""
        self.suspended = False
        if now > self.clock:
            self.clock = now
