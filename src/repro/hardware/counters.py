"""Per-core performance counters.

The paper's method is defined entirely in terms of hardware performance
counter reads: the Target's CPI and bandwidth, and the Pirate's fetch ratio,
are all computed from counter deltas over measurement intervals (§II-A,
§III-A, where the authors patch the kernel to expose ``OFF_CORE_RSP_0`` for
per-core L3 events).  This module provides the same facility for the
simulated machine: cumulative per-core counters, cheap snapshots, and delta
arithmetic, so the pirating harness reads the machine exactly the way the
real tool reads the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..units import gbps_from_bytes_per_cycle


@dataclass
class CounterSample:
    """One reading (or delta) of a core's counter bank.

    All values are cumulative counts since machine construction when produced
    by :meth:`PerfCounters.sample`, or interval counts when produced by
    :meth:`CounterSample.delta`.
    """

    cycles: float = 0.0
    instructions: float = 0.0
    mem_accesses: float = 0.0
    l1_hits: float = 0.0
    l2_hits: int = 0
    l3_hits: int = 0
    #: demand misses at L3 (the paper's *misses*)
    l3_misses: int = 0
    #: lines brought from memory incl. prefetches (the paper's *fetches*)
    l3_fetches: int = 0
    prefetch_fills: int = 0
    dram_writeback_lines: int = 0
    dram_bytes: float = 0.0
    l3_bytes: float = 0.0

    def delta(self, earlier: "CounterSample") -> "CounterSample":
        """Counter increments since ``earlier``."""
        out = CounterSample()
        for f in fields(self):
            setattr(out, f.name, getattr(self, f.name) - getattr(earlier, f.name))
        return out

    # -- derived metrics (the paper's reported quantities) -------------------

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def fetch_ratio(self) -> float:
        """Fetches per memory access (§I-B)."""
        return self.l3_fetches / self.mem_accesses if self.mem_accesses else 0.0

    @property
    def miss_ratio(self) -> float:
        """Demand misses per memory access (§I-B)."""
        return self.l3_misses / self.mem_accesses if self.mem_accesses else 0.0

    @property
    def fetch_rate(self) -> float:
        """Fetches per cycle — proportional to off-chip read bandwidth."""
        return self.l3_fetches / self.cycles if self.cycles else 0.0

    def bandwidth_gbps(self, clock_hz: float) -> float:
        """Off-chip bandwidth (GB/s) this sample represents."""
        if not self.cycles:
            return 0.0
        return gbps_from_bytes_per_cycle(self.dram_bytes / self.cycles, clock_hz)


class PerfCounters:
    """Counter banks for every core of a machine."""

    def __init__(self, num_cores: int):
        self._banks = [CounterSample() for _ in range(num_cores)]
        #: optional read-tamper hook ``(core, sample) -> sample`` — fault
        #: injection perturbs *reads* here, never the banks themselves, just
        #: as a glitched PMU read leaves the hardware counters intact
        self.tamper = None

    def bank(self, core: int) -> CounterSample:
        """Mutable cumulative bank for ``core`` (the machine updates this)."""
        return self._banks[core]

    def sample(self, core: int) -> CounterSample:
        """Snapshot of a core's cumulative counters (through the tamper hook)."""
        b = self._banks[core]
        s = CounterSample(**{f.name: getattr(b, f.name) for f in fields(CounterSample)})
        if self.tamper is not None:
            s = self.tamper(core, s)
        return s

    def sample_all(self) -> list[CounterSample]:
        """Snapshot every core."""
        return [self.sample(i) for i in range(len(self._banks))]
