"""Bandwidth domains: shared interfaces with finite capacity.

Two instances exist per machine — the off-chip (DRAM) interface whose 10.4
GB/s cap makes LBM bandwidth-bound in Fig. 2, and the shared-L3 interface
whose 68 GB/s cap limits how many Pirate threads can run (§III-C).

The model is *epoch feedback with demand estimation*: every quantum reports
the bytes it moved and the cycles it would have taken unconstrained.  At each
epoch rollover the domain sums the per-thread unconstrained rates into an
aggregate demand ``D`` and publishes

* ``stretch = max(1, D / C)`` — proportional work-conserving sharing: when
  demand exceeds capacity ``C``, every requester's transfers slow by ``D/C``
  (this reproduces the paper's LBM result: 12 GB/s demanded over a 10.4 GB/s
  pipe runs at 10.4/12 = 87% speed),
* ``latency_scale = 1 + u`` with ``u = min(D/C, 1)`` — a mild queueing-delay
  inflation applied to per-miss latency.

One-epoch feedback delay means transients settle within an epoch or two;
steady-state workloads (which is what every experiment measures) converge to
the proportional-sharing fixed point.
"""

from __future__ import annotations


class BandwidthDomain:
    """Capacity-limited shared interface with epoch-feedback contention."""

    def __init__(
        self,
        name: str,
        capacity_bytes_per_cycle: float,
        epoch_cycles: float = 50_000.0,
        latency_alpha: float = 1.0,
    ):
        if capacity_bytes_per_cycle <= 0:
            raise ValueError(f"{name}: capacity must be positive")
        if epoch_cycles <= 0:
            raise ValueError(f"{name}: epoch must be positive")
        self.name = name
        self.capacity = capacity_bytes_per_cycle
        self.epoch_cycles = epoch_cycles
        self.latency_alpha = latency_alpha
        #: demand accumulators for the current epoch: thread -> [bytes, cycles]
        self._acc: dict[int, list[float]] = {}
        self._epoch_index = 0
        #: published factors (from the previous epoch's demand)
        self.stretch = 1.0
        self.latency_scale = 1.0
        self.demand_rate = 0.0
        #: total bytes ever recorded (for reports)
        self.total_bytes = 0.0

    def record(self, thread_id: int, nbytes: float, unstretched_cycles: float) -> None:
        """Report one quantum's traffic: bytes moved, unconstrained duration."""
        if nbytes <= 0 or unstretched_cycles <= 0:
            return
        self.total_bytes += nbytes
        acc = self._acc.get(thread_id)
        if acc is None:
            self._acc[thread_id] = [nbytes, unstretched_cycles]
        else:
            acc[0] += nbytes
            acc[1] += unstretched_cycles

    def maybe_rollover(self, now_cycles: float) -> bool:
        """Advance the epoch if global time crossed a boundary.

        Returns True when factors were republished.  The caller (the machine)
        invokes this with the minimum runnable-thread clock.
        """
        epoch = int(now_cycles / self.epoch_cycles)
        if epoch <= self._epoch_index:
            return False
        self._epoch_index = epoch
        demand = 0.0
        for nbytes, cycles in self._acc.values():
            demand += nbytes / cycles
        self._acc.clear()
        self.demand_rate = demand
        util = demand / self.capacity
        self.stretch = util if util > 1.0 else 1.0
        self.latency_scale = 1.0 + self.latency_alpha * (util if util < 1.0 else 1.0)
        return True

    @property
    def utilization(self) -> float:
        """Published demand over capacity (may exceed 1 when oversubscribed)."""
        return self.demand_rate / self.capacity

    def reset(self) -> None:
        """Forget all demand history (fresh machine)."""
        self._acc.clear()
        self._epoch_index = 0
        self.stretch = 1.0
        self.latency_scale = 1.0
        self.demand_rate = 0.0
        self.total_bytes = 0.0
