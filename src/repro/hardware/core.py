"""Interval-style core timing model.

The paper measures on real silicon; the substitution (DESIGN.md §2) is a
first-order timing model in the tradition of interval simulation
(Karkhanis & Smith; Eyerman et al. — the paper's refs [14], [18]): a quantum
of ``n`` instructions costs

``n * cpi_base``
    pipeline + L1-hit work of the workload, plus

stall terms for each miss class, divided by the workload's memory-level
parallelism (MLP), plus bandwidth bounds:

* every access reaching L3 pays the L3 hit latency (scaled by the L3
  domain's queueing factor),
* every demand L3 miss pays the DRAM latency (scaled by the DRAM domain's
  queueing factor),
* the quantum's L3 transfer time is bounded below by the per-core L3 port
  bandwidth and the shared-L3 proportional-sharing stretch,
* the quantum's DRAM transfer time is bounded below by the off-chip
  proportional-sharing stretch.

This reproduces both regimes the paper's analysis needs: latency-bound
applications (mcf, sphinx3) slow down when misses rise, and bandwidth-bound
applications (lbm, libquantum) slow down when aggregate demand exceeds the
pipe (Fig. 2's 87% effect).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..caches.base import CoreMemStats
from ..config import CoreConfig
from .bandwidth import BandwidthDomain

#: Line size in bytes; fixed across the library (Table I).
_LINE = 64


@dataclass
class TimingBreakdown:
    """Cycle accounting for one quantum (diagnostics and tests)."""

    base: float = 0.0
    l2_stall: float = 0.0
    l3_time: float = 0.0
    l3_latency_bound: float = 0.0
    l3_bandwidth_bound: float = 0.0
    dram_time: float = 0.0
    dram_latency_bound: float = 0.0
    dram_bandwidth_bound: float = 0.0

    @property
    def total(self) -> float:
        return self.base + self.l2_stall + self.l3_time + self.dram_time


class CoreTimingModel:
    """Computes quantum durations from memory-event counts."""

    def __init__(
        self,
        config: CoreConfig,
        l3_domain: BandwidthDomain,
        dram_domain: BandwidthDomain,
    ):
        self.config = config
        self.l3_domain = l3_domain
        self.dram_domain = dram_domain

    def quantum_cycles(
        self,
        instructions: float,
        stats: CoreMemStats,
        cpi_base: float,
        mlp: float,
        thread_id: int,
    ) -> tuple[float, TimingBreakdown]:
        """Cycles for a quantum of ``instructions`` with events ``stats``.

        Also records the quantum's traffic demand with both bandwidth
        domains so their next epoch sees it.
        """
        cfg = self.config
        bd = TimingBreakdown()
        bd.base = instructions * cpi_base
        bd.l2_stall = stats.l2_hits * cfg.l2_hit_latency / mlp

        l3_accesses = stats.l3_hits + stats.l3_misses
        l3_lines_moved = l3_accesses + stats.prefetch_fills
        l3_bytes = l3_lines_moved * _LINE
        bd.l3_latency_bound = l3_accesses * cfg.l3_hit_latency * self.l3_domain.latency_scale / mlp
        bd.l3_bandwidth_bound = max(
            l3_bytes / cfg.l3_port_bytes_per_cycle,
            l3_bytes * self.l3_domain.stretch / self.l3_domain.capacity,
        )
        bd.l3_time = max(bd.l3_latency_bound, bd.l3_bandwidth_bound)

        dram_lines = stats.l3_fetches + stats.dram_writeback_lines
        dram_bytes = dram_lines * _LINE
        bd.dram_latency_bound = (
            stats.l3_misses * cfg.dram_latency * self.dram_domain.latency_scale / mlp
        )
        bd.dram_bandwidth_bound = dram_bytes * self.dram_domain.stretch / self.dram_domain.capacity
        bd.dram_time = max(bd.dram_latency_bound, bd.dram_bandwidth_bound)

        cycles = bd.total
        if cycles <= 0.0:
            cycles = 1.0

        # report demand at the *unstretched* rate so the domains can estimate
        # aggregate demand rather than (already throttled) delivery
        unstretched = (
            bd.base
            + bd.l2_stall
            + max(bd.l3_latency_bound, l3_bytes / cfg.l3_port_bytes_per_cycle)
            + bd.dram_latency_bound
        )
        if unstretched <= 0.0:
            unstretched = 1.0
        if l3_bytes:
            self.l3_domain.record(thread_id, l3_bytes, unstretched)
        if dram_bytes:
            self.dram_domain.record(thread_id, dram_bytes, unstretched)

        return cycles, bd
