"""The simulated multicore machine the Cache Pirating technique runs on.

This package substitutes for the paper's Nehalem E5520 testbed: cores with an
interval-style timing model (:mod:`repro.hardware.core`), per-core performance
counter banks equivalent to the perfctr/``OFF_CORE_RSP_0`` setup of §III-A
(:mod:`repro.hardware.counters`), bandwidth-limited DRAM and shared-L3
interfaces (:mod:`repro.hardware.bandwidth`), and a quantum-interleaved
scheduler with pinning and suspend/resume (:mod:`repro.hardware.machine`).
"""

from .bandwidth import BandwidthDomain
from .counters import CounterSample, PerfCounters
from .core import CoreTimingModel, TimingBreakdown
from .thread import SimThread, WorkloadLike
from .machine import Machine

__all__ = [
    "BandwidthDomain",
    "CounterSample",
    "PerfCounters",
    "CoreTimingModel",
    "TimingBreakdown",
    "SimThread",
    "WorkloadLike",
    "Machine",
]
