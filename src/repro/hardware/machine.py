"""The simulated multicore machine: scheduler, counters, bandwidth domains.

Execution is quantum-interleaved: the scheduler always advances the runnable
thread with the smallest virtual clock by roughly ``quantum_cycles`` cycles,
so all running threads stay within one quantum of each other — fine enough
that cache contention between the Target and the Pirate plays out at a
realistic relative rate, and coarse enough that simulation stays fast.

Each quantum:

1. the thread plans ``(instructions, line addresses)`` from its workload,
2. the addresses run through the shared :class:`~repro.caches.CacheHierarchy`,
3. the core timing model converts the event counts into cycles (consulting
   the DRAM and L3 bandwidth domains),
4. the per-core performance counter bank is updated — experiments *only*
   read the machine through these counters, mirroring the paper's method.

Suspend/resume implements the paper's warm-up gaps (Fig. 5): a suspended
thread retires nothing but its clock jumps forward to the global time on
resume, so suspension costs wall-clock time — this is what the Table III
overhead measurement accounts.
"""

from __future__ import annotations

from typing import Callable

from ..caches.base import CoreMemStats
from ..caches.hierarchy import CacheHierarchy
from ..config import MachineConfig
from ..errors import SimulationError
from .bandwidth import BandwidthDomain
from .core import CoreTimingModel
from .counters import PerfCounters
from .thread import SimThread, WorkloadLike

#: Default scheduling quantum (cycles).  Small enough that Pirate/Target
#: interleave far below a measurement interval, big enough to amortize
#: per-quantum overhead.
DEFAULT_QUANTUM = 20_000.0


class Machine:
    """A configured multicore with threads, counters and bandwidth domains."""

    def __init__(
        self,
        config: MachineConfig,
        seed: int = 0,
        quantum_cycles: float = DEFAULT_QUANTUM,
    ):
        if quantum_cycles <= 0:
            raise SimulationError("quantum must be positive")
        self.config = config
        self.hierarchy = CacheHierarchy(config, seed)
        # latency_alpha calibration: a single saturating co-runner (the
        # Pirate at ~40% L3 utilization) must have "virtually no impact" on
        # the Target (§III-C), while DRAM queueing near saturation should
        # still be felt (Fig. 2's bandwidth-bound regime).
        self.l3_domain = BandwidthDomain(
            "L3", config.l3_bytes_per_cycle, latency_alpha=0.05
        )
        self.dram_domain = BandwidthDomain(
            "DRAM", config.dram_bytes_per_cycle, latency_alpha=0.6
        )
        self.timing = CoreTimingModel(config.core, self.l3_domain, self.dram_domain)
        self.counters = PerfCounters(config.num_cores)
        self.threads: list[SimThread] = []
        self.quantum_cycles = quantum_cycles
        #: multiplier applied to the next quantum's length (fault injection:
        #: scheduler jitter); 1.0 on an unfaulted machine
        self.quantum_scale = 1.0
        #: installed fault controller (see :meth:`install_faults`), or None
        self.fault_controller = None

    # -- thread management -----------------------------------------------------

    def add_thread(
        self,
        workload: WorkloadLike,
        core: int,
        *,
        instruction_limit: float | None = None,
    ) -> SimThread:
        """Create a thread pinned to ``core`` (cores may host several threads,
        but their shared counter bank then aggregates them)."""
        if not 0 <= core < self.config.num_cores:
            raise SimulationError(
                f"core {core} out of range for {self.config.num_cores}-core machine"
            )
        t = SimThread(len(self.threads), workload, core, instruction_limit=instruction_limit)
        t.clock = self.now
        self.threads.append(t)
        return t

    @property
    def now(self) -> float:
        """Global time: the latest point any thread has reached."""
        return max((t.clock for t in self.threads), default=0.0)

    @property
    def frontier(self) -> float:
        """Scheduling frontier: the earliest runnable thread's clock."""
        runnable = [t.clock for t in self.threads if t.runnable]
        return min(runnable) if runnable else self.now

    def suspend(self, thread: SimThread) -> None:
        """Halt a thread (Fig. 5 warm-up gaps)."""
        thread.suspend()

    # -- fault injection ---------------------------------------------------------

    def install_faults(self, controller) -> None:
        """Attach a fault controller (see :mod:`repro.faults`).

        Duck-typed so the hardware layer stays independent of the faults
        package: ``controller`` needs ``attach(machine)`` (called here, may
        install counter-tamper hooks) and ``tick(now_cycles)`` (called once
        per scheduler quantum with the current frontier).
        """
        if not (hasattr(controller, "attach") and hasattr(controller, "tick")):
            raise SimulationError(
                "fault controller needs attach()/tick(); wrap a FaultPlan in "
                "repro.faults.FaultController"
            )
        self.fault_controller = controller
        controller.attach(self)

    def resume(self, thread: SimThread) -> None:
        """Wake a thread at the current global time."""
        thread.resume(self.now)

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        *,
        max_cycles: float | None = None,
        until: Callable[[], bool] | None = None,
        max_quanta: int | None = None,
    ) -> float:
        """Advance the machine.

        Stops when no thread is runnable, when the scheduling frontier has
        advanced by ``max_cycles``, when ``until()`` becomes true (checked
        between quanta), or after ``max_quanta`` quanta.  Returns the number
        of frontier cycles that elapsed.
        """
        start = self.frontier
        quanta = 0
        while True:
            if until is not None and until():
                break
            if self.fault_controller is not None:
                self.fault_controller.tick(self.frontier)
            runnable = [t for t in self.threads if t.runnable]
            if not runnable:
                break
            if max_cycles is not None and self.frontier - start >= max_cycles:
                break
            if max_quanta is not None and quanta >= max_quanta:
                break
            thread = min(runnable, key=lambda t: t.clock)
            self._step(thread)
            quanta += 1
            frontier = self.frontier
            self.l3_domain.maybe_rollover(frontier)
            self.dram_domain.maybe_rollover(frontier)
        return self.frontier - start

    def run_only(
        self,
        threads: list[SimThread] | SimThread,
        *,
        max_cycles: float | None = None,
        until: Callable[[], bool] | None = None,
    ) -> float:
        """Run only ``threads`` (others suspended meanwhile).

        This is the warm-up primitive: the paper halts the Pirate to let the
        Target re-warm its grown cache allocation and vice versa (Fig. 5).
        Returns the elapsed frontier cycles.
        """
        if isinstance(threads, SimThread):
            threads = [threads]
        keep = set(id(t) for t in threads)
        others = [t for t in self.threads if id(t) not in keep and t.runnable]
        for t in others:
            t.suspend()
        try:
            return self.run(max_cycles=max_cycles, until=until)
        finally:
            now = self.now
            for t in others:
                t.resume(now)

    def run_alone(self, thread: SimThread, cycles: float) -> None:
        """Back-compat wrapper for :meth:`run_only` with a cycle budget."""
        self.run_only(thread, max_cycles=cycles)

    def _step(self, thread: SimThread) -> None:
        instr, n_lines = thread.plan_quantum(self.quantum_cycles * self.quantum_scale)
        if instr <= 0.0:
            thread.finished = True
            return
        wl = thread.workload
        if n_lines > 0:
            lines, writes = wl.chunk(n_lines)
            stats = self.hierarchy.access_chunk(
                thread.core, lines, writes, bypass_private=wl.bypass_private
            )
            # line-granularity accounting: each emitted line address stands for
            # `accesses_per_line` architectural accesses; the extras are L1 hits
            extra = n_lines * (wl.accesses_per_line - 1.0)
            mem_accesses = n_lines * wl.accesses_per_line
        else:
            stats = CoreMemStats()
            extra = 0.0
            mem_accesses = 0.0

        cycles, _bd = self.timing.quantum_cycles(
            instr, stats, wl.cpi_base, wl.mlp, thread.thread_id
        )
        thread.retire(instr, cycles)

        bank = self.counters.bank(thread.core)
        bank.cycles += cycles
        bank.instructions += instr
        bank.mem_accesses += mem_accesses
        bank.l1_hits += stats.l1_hits + extra
        bank.l2_hits += stats.l2_hits
        bank.l3_hits += stats.l3_hits
        bank.l3_misses += stats.l3_misses
        bank.l3_fetches += stats.l3_fetches
        bank.prefetch_fills += stats.prefetch_fills
        bank.dram_writeback_lines += stats.dram_writeback_lines
        bank.dram_bytes += (stats.l3_fetches + stats.dram_writeback_lines) * 64.0
        bank.l3_bytes += (stats.l3_hits + stats.l3_misses + stats.prefetch_fills) * 64.0
