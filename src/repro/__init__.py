"""repro — Cache Pirating: Measuring the Curse of the Shared Cache.

A full reproduction of Eklov, Nikoleris, Black-Schaffer & Hagersten (ICPP
2011) as a Python library.  The paper's technique — co-running a cache-
stealing *Pirate* with a *Target* application and reading both through
hardware performance counters to capture the Target's CPI, bandwidth and
fetch/miss ratios as a function of its available shared cache — is
implemented unmodified on top of a simulated Nehalem-class multicore
(DESIGN.md documents the hardware substitution).

Quick start::

    from repro import make_benchmark, measure_curve_dynamic

    curve = measure_curve_dynamic(
        lambda: make_benchmark("omnetpp"),
        sizes_mb=[8.0, 6.0, 4.0, 2.0, 1.0, 0.5],
        total_instructions=16e6,
    ).curve
    print(curve.format_table())

Packages: ``repro.caches`` (cache models), ``repro.hardware`` (the machine),
``repro.workloads`` (synthetic SPEC-like suite), ``repro.core`` (the
pirating technique and its retry/recovery engine), ``repro.observability``
(run telemetry: spans, metrics, JSONL export), ``repro.faults``
(deterministic fault injection for robustness testing), ``repro.tracing``
(Pin/Gprof stand-ins), ``repro.reference`` (trace-driven validation
simulator), ``repro.analysis`` (scaling prediction, error metrics),
``repro.experiments`` (one module per paper table/figure).
"""

from .config import CacheConfig, CoreConfig, MachineConfig, nehalem_config, tiny_config
from .errors import (
    ConfigError,
    DegradedMeasurement,
    MeasurementError,
    ReproError,
    RetryExhaustedError,
    SimulationError,
    TraceError,
)
from .hardware import CounterSample, Machine
from .workloads import (
    BENCHMARK_NAMES,
    TargetSpec,
    benchmark_spec,
    benchmark_target,
    make_benchmark,
    make_cigar,
    random_micro,
    sequential_micro,
)
from .core import (
    DEFAULT_FETCH_RATIO_THRESHOLD,
    DynamicRunResult,
    IntervalSample,
    PartialCurve,
    PerformanceCurve,
    Pirate,
    PointQuality,
    RetryPolicy,
    SweepCache,
    SweepSpec,
    choose_pirate_threads,
    derive_point_seed,
    measure_between_markers,
    measure_curve_dynamic,
    measure_curve_fixed,
    measure_curve_resilient,
    measure_fixed_size,
    measure_point_resilient,
    parallel_map,
    run_sweep,
)
from .observability import (
    NULL_TELEMETRY,
    Telemetry,
    TelemetryFragment,
    format_report,
    read_jsonl,
    summarize,
    write_jsonl,
)
from .faults import (
    CounterGlitchInjector,
    DramBrownoutInjector,
    FaultController,
    FaultEvent,
    FaultPlan,
    NoisyNeighborInjector,
    SchedulerJitterInjector,
)
from .tracing import AddressTrace, capture_trace, profile_workload
from .reference import apply_offset, reference_curve, simulate_trace
from .analysis import (
    curve_errors,
    measure_throughput,
    predict_throughput,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "CacheConfig",
    "CoreConfig",
    "MachineConfig",
    "nehalem_config",
    "tiny_config",
    # errors
    "ReproError",
    "ConfigError",
    "SimulationError",
    "MeasurementError",
    "TraceError",
    "RetryExhaustedError",
    "DegradedMeasurement",
    # machine
    "Machine",
    "CounterSample",
    # workloads
    "BENCHMARK_NAMES",
    "benchmark_spec",
    "make_benchmark",
    "make_cigar",
    "random_micro",
    "sequential_micro",
    "TargetSpec",
    "benchmark_target",
    # the technique
    "DEFAULT_FETCH_RATIO_THRESHOLD",
    "Pirate",
    "PerformanceCurve",
    "IntervalSample",
    "DynamicRunResult",
    "measure_fixed_size",
    "measure_curve_fixed",
    "measure_curve_dynamic",
    "measure_between_markers",
    "choose_pirate_threads",
    # parallel sweep execution
    "SweepSpec",
    "SweepCache",
    "derive_point_seed",
    "run_sweep",
    "parallel_map",
    # resilience & fault injection
    "RetryPolicy",
    "PartialCurve",
    "PointQuality",
    "measure_point_resilient",
    "measure_curve_resilient",
    # observability
    "Telemetry",
    "TelemetryFragment",
    "NULL_TELEMETRY",
    "write_jsonl",
    "read_jsonl",
    "summarize",
    "format_report",
    "FaultPlan",
    "FaultEvent",
    "FaultController",
    "CounterGlitchInjector",
    "NoisyNeighborInjector",
    "SchedulerJitterInjector",
    "DramBrownoutInjector",
    # tracing & reference
    "AddressTrace",
    "capture_trace",
    "profile_workload",
    "simulate_trace",
    "reference_curve",
    "apply_offset",
    # analysis
    "curve_errors",
    "measure_throughput",
    "predict_throughput",
]
