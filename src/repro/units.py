"""Unit constants and conversion helpers used across the library.

All sizes are in bytes, all frequencies in Hz, all bandwidths in bytes per
second unless a function name says otherwise.  The simulated machine is
clocked in *cycles*; conversions between cycles and seconds always go through
an explicit clock frequency so no module hides an implicit clock.
"""

from __future__ import annotations

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB

KHZ: float = 1e3
MHZ: float = 1e6
GHZ: float = 1e9

#: Cache-line size of the modelled Nehalem system (Table I uses 64B lines).
LINE_SIZE: int = 64


def bytes_per_cycle(bandwidth_gbps: float, clock_hz: float) -> float:
    """Convert a bandwidth in GB/s into bytes per clock cycle.

    ``bandwidth_gbps`` uses decimal GB (1e9 bytes) as the paper does for
    DRAM/L3 bandwidth figures (10.4 GB/s, 68 GB/s).
    """
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return bandwidth_gbps * 1e9 / clock_hz


def gbps_from_bytes_per_cycle(bpc: float, clock_hz: float) -> float:
    """Convert bytes/cycle into decimal GB/s for reporting."""
    return bpc * clock_hz / 1e9


def cycles_to_seconds(cycles: float, clock_hz: float) -> float:
    """Convert a cycle count into seconds at the given clock."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return cycles / clock_hz


def mb(nbytes: float) -> float:
    """Express a byte count in (binary) megabytes, for table/plot axes."""
    return nbytes / MB


def fmt_size(nbytes: int) -> str:
    """Human readable size string (``512KB``, ``8MB``, ``64B``)."""
    if nbytes % MB == 0:
        return f"{nbytes // MB}MB"
    if nbytes % KB == 0:
        return f"{nbytes // KB}KB"
    if nbytes >= MB:
        return f"{nbytes / MB:.1f}MB"
    if nbytes >= KB:
        return f"{nbytes / KB:.1f}KB"
    return f"{nbytes}B"


def is_pow2(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def ilog2(n: int) -> int:
    """Integer log2 of a power of two; raises for anything else."""
    if not is_pow2(n):
        raise ValueError(f"{n} is not a positive power of two")
    return n.bit_length() - 1
