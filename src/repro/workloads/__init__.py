"""Synthetic workloads standing in for the paper's benchmark suite.

The paper evaluates on SPEC CPU2006 plus the Cigar application and two micro
benchmarks.  None of those are available offline, so this package provides
synthetic address-stream generators whose *curve shapes* (working-set knees,
streaming plateaus, phase behaviour) are calibrated to the paper's figures —
see ``repro.workloads.spec`` for the per-benchmark parameters and DESIGN.md
§2 for the substitution rationale.

Building blocks: access patterns (:mod:`repro.workloads.patterns`), weighted
mixtures (:mod:`repro.workloads.mixture`), phase alternation
(:mod:`repro.workloads.phased`), the named suite (:mod:`repro.workloads.spec`),
micro benchmarks for Fig. 4 (:mod:`repro.workloads.micro`) and the cigar
workload with its 6MB knee (:mod:`repro.workloads.cigar`).

The workload zoo extends the suite with request-stream families: Zipf
popularity streams (:mod:`repro.workloads.zipf`), data-sharing
multithreaded targets (:mod:`repro.workloads.sharing`), and recorded
address traces with a compact binary mmap format
(:mod:`repro.workloads.tracefile`).
"""

from .base import Workload, instance_base
from .patterns import (
    PointerChasePattern,
    RandomPattern,
    SequentialPattern,
    StridedPattern,
)
from .mixture import MixtureComponent, MixtureWorkload
from .phased import PhasedWorkload
from .spec import BENCHMARK_NAMES, benchmark_spec, make_benchmark
from .micro import random_micro, sequential_micro
from .cigar import make_cigar
from .zipf import ZipfPattern, make_zipf
from .sharing import SHARED_REGION_BASE, make_sharing, sharing_regions
from .tracefile import (
    TRACE_FORMAT_VERSION,
    TraceFile,
    TraceReplayWorkload,
    make_replay,
    open_trace,
    record_trace,
    replay_trace,
    trace_token,
    write_trace,
)
from .target import (
    TARGET_KINDS,
    ZOO_NAMES,
    TargetSpec,
    benchmark_target,
    zoo_target,
)

__all__ = [
    "Workload",
    "instance_base",
    "SequentialPattern",
    "RandomPattern",
    "StridedPattern",
    "PointerChasePattern",
    "MixtureComponent",
    "MixtureWorkload",
    "PhasedWorkload",
    "BENCHMARK_NAMES",
    "benchmark_spec",
    "make_benchmark",
    "random_micro",
    "sequential_micro",
    "make_cigar",
    "ZipfPattern",
    "make_zipf",
    "SHARED_REGION_BASE",
    "make_sharing",
    "sharing_regions",
    "TRACE_FORMAT_VERSION",
    "TraceFile",
    "TraceReplayWorkload",
    "make_replay",
    "open_trace",
    "record_trace",
    "replay_trace",
    "trace_token",
    "write_trace",
    "TARGET_KINDS",
    "ZOO_NAMES",
    "TargetSpec",
    "benchmark_target",
    "zoo_target",
]
