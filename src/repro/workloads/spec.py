"""The synthetic SPEC CPU2006 stand-in suite.

The paper evaluates on "all 28 SPEC CPU2006 applications (except 416.gamess
that we could not run)".  This registry defines 28 synthetic benchmarks with
the same names; each is a :class:`~repro.workloads.mixture.MixtureWorkload`
(403.gcc is a :class:`~repro.workloads.phased.PhasedWorkload`) whose regions,
weights and timing scalars were calibrated so the full-cache (8MB) operating
points and the curve *shapes* match the paper's Figs. 1, 2, 6 and 8:

* 429.mcf — pointer chasing over a >cache footprint: CPI ≈ 3.5, miss ratio
  ≈ 10% at 8MB, latency-bound, hard to steal cache from (Table II),
* 470.lbm — streaming with heavy prefetching (fetch/miss ≈ 8x), flat CPI,
  bandwidth rising as cache shrinks (Fig. 2),
* 462.libquantum — pure stream: CPI ≈ 0.7, ≈ 5 GB/s, flat fetch ratio,
  hardest to steal from (Table II caps it at 5MB),
* 471.omnetpp — CPI ≈ 1.7 at 8MB rising ≈ 20% by 2MB (Fig. 1's example),
* 453.povray / 464.h264ref — near-zero fetch ratios (the paper's relative-
  error outliers in Fig. 7),
* 435.gromacs — fetch == miss (no prefetch), 10x miss rise with flat CPI,
* 482.sphinx3 — latency-sensitive: ~20x miss rise drives +50% CPI,
* 401.bzip2 — ≈ 0.01 GB/s; 454.calculix — miss ratio ≈ 0.009%,
* 403.gcc — short phases; the Table III problem child.

Weights are **absolute access fractions**: a region with weight 0.05 receives
5% of all memory accesses.  Whatever the listed regions leave over goes to an
implicit L1-resident *hot region* (stack/locals — real programs spend most
accesses there), so fetch and miss ratios are on the paper's per-access scale.

The remaining benchmarks interpolate these archetypes with varied footprints
so the suite covers the spread in Figs. 6-8.  The six Fortran-only
benchmarks the authors could not instrument with Pin (footnote 2) are marked
``traceable=False`` and are likewise excluded from our reference-simulator
comparison (Figs. 6, 7).

Absolute SPEC behaviour is out of scope (DESIGN.md §6): these are models of
the *published curves*, not of the SPEC binaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..rng import stable_seed
from ..units import KB, MB
from .base import Workload, instance_base
from .mixture import MixtureComponent, MixtureWorkload
from .patterns import (
    Pattern,
    PointerChasePattern,
    RandomPattern,
    SequentialPattern,
    StridedPattern,
)
from .phased import PhasedWorkload

#: lines per MB at the fixed 64B line size
_LINES_PER_MB = MB // 64

#: size of the implicit L1-resident hot region (stack/locals)
HOT_REGION_BYTES = 8 * KB


@dataclass(frozen=True)
class RegionSpec:
    """Declarative description of one mixture component.

    ``weight`` is an absolute fraction of all memory accesses.
    """

    kind: str  # "seq" | "random" | "chase" | "strided"
    size_mb: float
    weight: float
    #: stream segment length in lines ("seq" only; None = unbroken cycle)
    segment: int | None = None
    #: stride in lines ("strided" only)
    stride: int = 2

    def __post_init__(self) -> None:
        if self.kind not in ("seq", "random", "chase", "strided"):
            raise ConfigError(f"unknown region kind {self.kind!r}")
        if self.size_mb <= 0 or self.weight <= 0:
            raise ConfigError("region size and weight must be positive")

    @property
    def lines(self) -> int:
        return max(int(self.size_mb * _LINES_PER_MB), 1)


@dataclass(frozen=True)
class BenchmarkSpec:
    """Full declarative description of one synthetic benchmark."""

    name: str
    spec_id: str
    regions: tuple[RegionSpec, ...]
    mem_fraction: float
    cpi_base: float
    mlp: float
    accesses_per_line: float = 1.0
    write_fraction: float = 0.2
    #: False for the six Fortran-only benchmarks (paper footnote 2)
    traceable: bool = True
    #: phased benchmarks: ((regions, instructions), ...) overrides `regions`
    phases: tuple[tuple[tuple[RegionSpec, ...], float], ...] = field(default=())
    #: one-line behaviour note carried into reports
    note: str = ""

    def __post_init__(self) -> None:
        for regions in self._region_groups():
            total = sum(r.weight for r in regions)
            if total > 1.0 + 1e-9:
                raise ConfigError(
                    f"{self.name}: absolute region weights sum to {total} > 1"
                )

    def _region_groups(self) -> list[tuple[RegionSpec, ...]]:
        groups = [self.regions] if self.regions else []
        groups.extend(regions for regions, _ in self.phases)
        return groups

    def hot_fraction(self) -> float:
        """Access fraction of the implicit L1-resident hot region."""
        if self.regions:
            return 1.0 - sum(r.weight for r in self.regions)
        if self.phases:
            return 1.0 - sum(r.weight for r in self.phases[0][0])
        return 1.0

    def footprint_mb(self) -> float:
        regions: list[RegionSpec] = list(self.regions)
        for phase_regions, _ in self.phases:
            regions.extend(phase_regions)
        return sum(r.size_mb for r in regions)


def _r(
    kind: str,
    size_mb: float,
    weight: float,
    segment: int | None = None,
    stride: int = 2,
) -> RegionSpec:
    return RegionSpec(kind=kind, size_mb=size_mb, weight=weight, segment=segment, stride=stride)


_SPECS: dict[str, BenchmarkSpec] = {}


def _register(spec: BenchmarkSpec) -> None:
    if spec.name in _SPECS:
        raise ConfigError(f"duplicate benchmark {spec.name}")
    _SPECS[spec.name] = spec


# --- the calibrated archetypes ------------------------------------------------
#
# Calibration conventions (see scripts/calibrate.py):
# * "random" regions give graded miss curves — the knee sits at the region
#   size; steady-state warm-up time is region_lines*apl/(mf*w) instructions
#   and is kept under a few million,
# * regions larger than the 8MB L3 are permanent-miss floors (warm-up free),
# * cyclic "seq"/"chase" regions are all-or-nothing under LRU and partially
#   thrash under the Nehalem policy — used for streams and for the
#   NRU-divergence behaviours the paper highlights (Fig. 4), not for knees.

_register(BenchmarkSpec(
    name="omnetpp", spec_id="471.omnetpp",
    regions=(
        _r("chase", 12.0, 0.008),   # permanent-miss floor
        _r("random", 2.0, 0.014),   # graded knee ~2MB
        _r("random", 0.8, 0.008),
        _r("random", 0.25, 0.015),
        _r("seq", 1.0, 0.060, segment=64),
    ),
    mem_fraction=0.35, cpi_base=0.55, mlp=2.2, accesses_per_line=1.0,
    write_fraction=0.25,
    note="discrete-event simulator; CPI rises ~20% by 2MB (Fig. 1)",
))

_register(BenchmarkSpec(
    name="lbm", spec_id="470.lbm",
    regions=(
        _r("seq", 24.0, 0.27, segment=16),  # permanent stream, prefetched 8:1
        _r("seq", 2.5, 0.29),               # reused sweep: hits when resident
    ),
    mem_fraction=0.40, cpi_base=0.65, mlp=6.0, accesses_per_line=8.0,
    write_fraction=0.40,
    note="lattice-Boltzmann streaming; fetch/miss ~8x, bandwidth-bound at 4 instances (Fig. 2)",
))

_register(BenchmarkSpec(
    name="mcf", spec_id="429.mcf",
    regions=(
        _r("chase", 30.0, 0.10),    # permanent-miss floor: MR ~10% at 8MB
        _r("random", 2.5, 0.030),
        _r("random", 0.6, 0.040),
        _r("random", 0.3, 0.100),
    ),
    mem_fraction=0.30, cpi_base=0.55, mlp=3.2, accesses_per_line=1.0,
    write_fraction=0.10,
    note="network simplex pointer chasing; CPI 3.5 / miss ratio 10% at 8MB",
))

_register(BenchmarkSpec(
    name="libquantum", spec_id="462.libquantum",
    regions=(_r("seq", 32.0, 1.0, segment=16),),
    mem_fraction=0.19, cpi_base=0.25, mlp=10.0, accesses_per_line=8.0,
    write_fraction=0.15,
    note="pure stream: CPI 0.7, ~5 GB/s, flat curves; hardest to steal from (Table II)",
))

_register(BenchmarkSpec(
    name="povray", spec_id="453.povray",
    regions=(_r("random", 0.15, 0.15),),
    mem_fraction=0.30, cpi_base=0.70, mlp=2.0, accesses_per_line=1.0,
    write_fraction=0.15,
    note="ray tracer, cache-resident; near-zero fetch ratio (Fig. 7 outlier)",
))

_register(BenchmarkSpec(
    name="h264ref", spec_id="464.h264ref",
    regions=(
        _r("seq", 0.4, 0.20, segment=64),
        _r("random", 0.2, 0.10),
    ),
    mem_fraction=0.35, cpi_base=0.80, mlp=3.0, accesses_per_line=4.0,
    write_fraction=0.25,
    note="video encoder, cache-resident; near-zero fetch ratio (Fig. 7 outlier)",
))

_register(BenchmarkSpec(
    name="gromacs", spec_id="435.gromacs",
    regions=(
        _r("random", 0.12, 0.100),
        _r("random", 0.8, 0.008),   # graded knee below ~1MB
        _r("random", 14.0, 0.0001),  # tiny permanent floor
    ),
    mem_fraction=0.30, cpi_base=0.90, mlp=2.0, accesses_per_line=1.0,
    write_fraction=0.20,
    note="fetch == miss (no prefetchable patterns); ~10x miss rise, flat CPI (§IV)",
))

_register(BenchmarkSpec(
    name="sphinx3", spec_id="482.sphinx3",
    regions=(
        _r("random", 0.1, 0.100),
        _r("seq", 0.5, 0.050, segment=32),
        _r("random", 1.2, 0.008),
        _r("random", 0.6, 0.005),
        _r("random", 12.0, 0.0006),  # permanent floor
    ),
    mem_fraction=0.35, cpi_base=0.55, mlp=1.6, accesses_per_line=1.0,
    write_fraction=0.15,
    note="latency-sensitive: ~20x miss rise drives +50% CPI (§IV)",
))

_register(BenchmarkSpec(
    name="bzip2", spec_id="401.bzip2",
    regions=(
        _r("random", 0.22, 0.120),
        _r("random", 12.0, 0.0002),  # permanent floor -> ~0.01 GB/s
    ),
    mem_fraction=0.35, cpi_base=0.80, mlp=2.0, accesses_per_line=2.0,
    write_fraction=0.30,
    note="compressor; ~0.01 GB/s off-chip bandwidth (§IV)",
))

_register(BenchmarkSpec(
    name="calculix", spec_id="454.calculix",
    regions=(
        _r("random", 0.15, 0.100),
        _r("random", 10.0, 0.00018),  # permanent floor -> MR ~0.009%
    ),
    mem_fraction=0.30, cpi_base=0.72, mlp=3.0, accesses_per_line=2.0,
    write_fraction=0.25,
    note="FE solver; miss ratio ~0.009% (§IV)",
))

_register(BenchmarkSpec(
    name="milc", spec_id="433.milc",
    regions=(
        _r("seq", 18.0, 0.20, segment=24),
        _r("random", 2.5, 0.040),
        _r("random", 0.2, 0.100),
    ),
    mem_fraction=0.40, cpi_base=0.70, mlp=4.0, accesses_per_line=4.0,
    write_fraction=0.35,
    note="lattice QCD; streaming + large footprint, hard to steal from (Table II)",
))

_register(BenchmarkSpec(
    name="soplex", spec_id="450.soplex",
    regions=(
        _r("chase", 8.0, 0.030),
        _r("seq", 10.0, 0.080, segment=32),
        _r("random", 1.5, 0.030),
        _r("random", 0.3, 0.100),
    ),
    mem_fraction=0.35, cpi_base=0.70, mlp=2.5, accesses_per_line=2.0,
    write_fraction=0.20,
    note="LP solver; large mixed footprint, hard to steal from (Table II)",
))

# 403.gcc: three short phases with very different footprints — the reason
# Table III's 1B-instruction interval fails (23% CPI error).
_GCC_SCALARS = dict(
    mem_fraction=0.32, cpi_base=0.85, mlp=2.0, accesses_per_line=2.0,
    write_fraction=0.20,
)
#: instructions per gcc phase, chosen so a measurement cycle at the largest
#: Table III interval straddles phases while the smallest sits well inside
GCC_PHASE_INSTRUCTIONS = 30e6

_register(BenchmarkSpec(
    name="gcc", spec_id="403.gcc",
    regions=(),
    phases=(
        ((_r("random", 0.4, 0.120), _r("random", 1.5, 0.050)), GCC_PHASE_INSTRUCTIONS),
        ((_r("random", 2.8, 0.150), _r("random", 0.2, 0.100)), GCC_PHASE_INSTRUCTIONS),
        ((_r("seq", 5.0, 0.120, segment=48), _r("random", 0.3, 0.080)), GCC_PHASE_INSTRUCTIONS),
    ),
    note="short phases; worst-case for long measurement intervals (Table III)",
    **_GCC_SCALARS,
))

# --- interpolating the rest of the suite ---------------------------------------

_register(BenchmarkSpec(
    name="astar", spec_id="473.astar",
    regions=(
        _r("chase", 1.8, 0.020),
        _r("random", 0.9, 0.040),
        _r("random", 0.3, 0.100),
    ),
    mem_fraction=0.33, cpi_base=0.72, mlp=1.6, accesses_per_line=1.0,
    write_fraction=0.15,
    note="path-finding, pointer-heavy, mid-size footprint",
))

_register(BenchmarkSpec(
    name="bwaves", spec_id="410.bwaves",
    regions=(_r("seq", 14.0, 0.120, segment=32), _r("random", 0.4, 0.080)),
    mem_fraction=0.38, cpi_base=0.70, mlp=5.0, accesses_per_line=8.0,
    write_fraction=0.30, traceable=False,
    note="Fortran CFD streaming (untraceable, footnote 2)",
))

_register(BenchmarkSpec(
    name="cactusADM", spec_id="436.cactusADM",
    regions=(_r("seq", 6.0, 0.100, segment=24), _r("random", 0.5, 0.100)),
    mem_fraction=0.36, cpi_base=0.75, mlp=4.0, accesses_per_line=8.0,
    write_fraction=0.40,
    note="numerical relativity stencil; moderate streaming",
))

_register(BenchmarkSpec(
    name="dealII", spec_id="447.dealII",
    regions=(_r("random", 1.2, 0.030), _r("random", 0.25, 0.100)),
    mem_fraction=0.34, cpi_base=0.72, mlp=2.0, accesses_per_line=2.0,
    write_fraction=0.20,
    note="FE library; small working set with a 1MB tail",
))

_register(BenchmarkSpec(
    name="GemsFDTD", spec_id="459.GemsFDTD",
    regions=(_r("seq", 9.0, 0.120, segment=32), _r("random", 0.3, 0.080)),
    mem_fraction=0.40, cpi_base=0.75, mlp=5.0, accesses_per_line=8.0,
    write_fraction=0.35, traceable=False,
    note="Fortran FDTD streaming (untraceable, footnote 2)",
))

_register(BenchmarkSpec(
    name="gobmk", spec_id="445.gobmk",
    regions=(_r("random", 0.35, 0.100), _r("random", 2.0, 0.004)),
    mem_fraction=0.30, cpi_base=0.90, mlp=2.0, accesses_per_line=1.0,
    write_fraction=0.20,
    note="Go engine; mostly cache-resident",
))

_register(BenchmarkSpec(
    name="hmmer", spec_id="456.hmmer",
    regions=(
        _r("seq", 0.8, 0.150, segment=64),
        _r("random", 0.15, 0.100),
        _r("random", 10.0, 0.0002),  # tiny permanent floor
    ),
    mem_fraction=0.45, cpi_base=0.62, mlp=4.0, accesses_per_line=4.0,
    write_fraction=0.25,
    note="profile HMM search; small streaming working set",
))

_register(BenchmarkSpec(
    name="leslie3d", spec_id="437.leslie3d",
    regions=(_r("seq", 12.0, 0.120, segment=24), _r("random", 0.4, 0.080)),
    mem_fraction=0.40, cpi_base=0.75, mlp=5.0, accesses_per_line=8.0,
    write_fraction=0.35, traceable=False,
    note="Fortran LES streaming (untraceable, footnote 2)",
))

_register(BenchmarkSpec(
    name="namd", spec_id="444.namd",
    regions=(_r("random", 0.5, 0.100), _r("random", 1.5, 0.002)),
    mem_fraction=0.35, cpi_base=0.68, mlp=3.0, accesses_per_line=2.0,
    write_fraction=0.20,
    note="molecular dynamics; compact working set",
))

_register(BenchmarkSpec(
    name="perlbench", spec_id="400.perlbench",
    regions=(
        _r("chase", 0.9, 0.020),
        _r("random", 0.35, 0.060),
        _r("random", 0.15, 0.100),
    ),
    mem_fraction=0.35, cpi_base=0.80, mlp=2.0, accesses_per_line=1.0,
    write_fraction=0.25,
    note="interpreter; pointer-heavy, sub-MB hot set",
))

_register(BenchmarkSpec(
    name="sjeng", spec_id="458.sjeng",
    regions=(_r("random", 0.4, 0.100), _r("random", 10.0, 0.002)),
    mem_fraction=0.30, cpi_base=0.85, mlp=2.0, accesses_per_line=1.0,
    write_fraction=0.20,
    note="chess engine; hash-table floor beyond the cache",
))

_register(BenchmarkSpec(
    name="tonto", spec_id="465.tonto",
    regions=(_r("random", 1.0, 0.030), _r("random", 0.25, 0.100)),
    mem_fraction=0.33, cpi_base=0.80, mlp=2.5, accesses_per_line=2.0,
    write_fraction=0.25, traceable=False,
    note="Fortran quantum chemistry (untraceable, footnote 2)",
))

_register(BenchmarkSpec(
    name="wrf", spec_id="481.wrf",
    regions=(_r("seq", 8.0, 0.100, segment=32), _r("random", 0.35, 0.080)),
    mem_fraction=0.38, cpi_base=0.80, mlp=4.0, accesses_per_line=8.0,
    write_fraction=0.30, traceable=False,
    note="Fortran weather model (untraceable, footnote 2)",
))

_register(BenchmarkSpec(
    name="xalancbmk", spec_id="483.xalancbmk",
    regions=(
        _r("chase", 2.5, 0.030),
        _r("random", 1.2, 0.050),
        _r("random", 0.3, 0.100),
    ),
    mem_fraction=0.36, cpi_base=0.75, mlp=1.7, accesses_per_line=1.0,
    write_fraction=0.20,
    note="XSLT processor; pointer-heavy with a 2.5MB tail",
))

_register(BenchmarkSpec(
    name="zeusmp", spec_id="434.zeusmp",
    regions=(_r("seq", 10.0, 0.120, segment=24), _r("random", 0.4, 0.080)),
    mem_fraction=0.40, cpi_base=0.75, mlp=5.0, accesses_per_line=8.0,
    write_fraction=0.35, traceable=False,
    note="Fortran MHD streaming (untraceable, footnote 2)",
))


#: All registered benchmark names, in registration order.
BENCHMARK_NAMES: tuple[str, ...] = tuple(_SPECS)

#: Names usable in the reference-simulator comparison (the Pin stand-in can
#: trace everything except the six Fortran-only benchmarks).
TRACEABLE_NAMES: tuple[str, ...] = tuple(n for n, s in _SPECS.items() if s.traceable)


def benchmark_spec(name: str) -> BenchmarkSpec:
    """Spec for ``name`` (accepts both ``mcf`` and ``429.mcf`` forms)."""
    if name in _SPECS:
        return _SPECS[name]
    for spec in _SPECS.values():
        if spec.spec_id == name:
            return spec
    raise ConfigError(f"unknown benchmark {name!r}; known: {', '.join(_SPECS)}")


def _build_pattern(region: RegionSpec, base_line: int, seed: int) -> Pattern:
    if region.kind == "seq":
        return SequentialPattern(
            base_line, region.lines, segment_lines=region.segment, seed=seed
        )
    if region.kind == "random":
        return RandomPattern(base_line, region.lines, seed=seed)
    if region.kind == "chase":
        return PointerChasePattern(base_line, region.lines, seed=seed)
    return StridedPattern(base_line, region.lines, stride_lines=region.stride, seed=seed)


def _build_mixture(
    name: str,
    regions: tuple[RegionSpec, ...],
    spec: BenchmarkSpec,
    base_line: int,
    seed: int,
) -> MixtureWorkload:
    components = []
    offset = base_line
    for i, region in enumerate(regions):
        pattern = _build_pattern(region, offset, stable_seed(seed, name, i))
        components.append(MixtureComponent(pattern=pattern, weight=region.weight))
        # pad regions apart so they never share a line
        offset += region.lines + _LINES_PER_MB
    hot = 1.0 - sum(r.weight for r in regions)
    if hot > 1e-9:
        # the implicit L1-resident hot region (stack/locals)
        pattern = RandomPattern(
            offset, HOT_REGION_BYTES // 64, seed=stable_seed(seed, name, "hot")
        )
        components.append(MixtureComponent(pattern=pattern, weight=hot))
    return MixtureWorkload(
        name,
        components,
        mem_fraction=spec.mem_fraction,
        cpi_base=spec.cpi_base,
        mlp=spec.mlp,
        accesses_per_line=spec.accesses_per_line,
        write_fraction=spec.write_fraction,
        seed=stable_seed(seed, name, "mix"),
    )


def make_benchmark(name: str, *, instance: int = 0, seed: int = 0) -> Workload:
    """Instantiate a suite benchmark.

    ``instance`` selects a disjoint address-space slot so several copies can
    co-run (the Fig. 1/2 throughput experiments); ``seed`` varies the random
    streams while keeping the registered shape.
    """
    spec = benchmark_spec(name)
    base = instance_base(instance)
    if spec.phases:
        sub = []
        offset = base
        for pi, (regions, instr) in enumerate(spec.phases):
            wl = _build_mixture(
                f"{spec.name}.phase{pi}", regions, spec, offset, stable_seed(seed, pi)
            )
            sub.append((wl, instr))
            offset += sum(r.lines for r in regions) + 64 * _LINES_PER_MB
        return PhasedWorkload(spec.name, sub, seed=stable_seed(seed, name, "phased"))
    return _build_mixture(spec.name, spec.regions, spec, base, seed)
