"""Compact binary address-trace files: recorder, mmap replayer, workload.

Recorded address traces are the third workload family the zoo adds: instead
of a synthetic generator, the request stream is an exact replay of a
previously captured line-address sequence.  The on-disk format is built for
*replay*, not archival: a fixed little-endian header, a small JSON metadata
blob, then the raw ``int64`` line array (plus an optional bit-packed write
mask) — so a replayer can ``mmap`` the payload and stream it with zero
parsing and zero copies beyond the chunks it emits.

Layout (all little-endian)::

    offset 0   magic      4s   b"RPAT"
           4   version    u32  TRACE_FORMAT_VERSION
           8   flags      u32  bit0: write mask present
          12   meta_len   u32  length of the JSON metadata blob
          16   count      u64  number of accesses
          24   sha256     32s  checksum over meta + lines + writes bytes
          56   meta       meta_len bytes of JSON (timing scalars, name, ...)
          56+meta_len     lines  int64[count]
          ...              writes uint8[ceil(count / 8)]  (bit-packed, optional)

Every reader verifies the envelope end to end before serving a single
access: bad magic, a foreign version, a size that does not match ``count``,
or a checksum mismatch each raise a one-line
:class:`~repro.errors.TraceError` — a damaged file can never silently
replay a partial or corrupted stream.
"""

from __future__ import annotations

import hashlib
import json
import struct
from pathlib import Path

import numpy as np

from ..errors import ConfigError, TraceError
from .base import Workload

#: Bump when the on-disk layout changes; readers reject other versions.
TRACE_FORMAT_VERSION = 1

_MAGIC = b"RPAT"
_HEADER = struct.Struct("<4sIIIQ32s")
_FLAG_WRITES = 1


def _payload_sha(meta: bytes, lines: np.ndarray, writes: np.ndarray | None) -> bytes:
    h = hashlib.sha256()
    h.update(meta)
    h.update(memoryview(np.ascontiguousarray(lines)))
    if writes is not None:
        h.update(memoryview(np.ascontiguousarray(writes)))
    return h.digest()


def write_trace(
    path: str | Path,
    lines: np.ndarray,
    *,
    writes: np.ndarray | None = None,
    meta: dict | None = None,
) -> None:
    """Serialize an access stream to ``path`` in the RPAT format.

    ``lines`` must be a non-empty 1-D integer array; ``writes`` (optional)
    a boolean mask of the same shape.  ``meta`` is stored verbatim as JSON
    — the replayer looks up the workload timing scalars there.
    """
    lines = np.asarray(lines, dtype="<i8")
    if lines.ndim != 1 or len(lines) == 0:
        raise TraceError(f"{path}: cannot write an empty or non-1D trace")
    packed = None
    flags = 0
    if writes is not None:
        writes = np.asarray(writes, dtype=bool)
        if writes.shape != lines.shape:
            raise TraceError(f"{path}: write mask shape mismatch")
        packed = np.packbits(writes)
        flags |= _FLAG_WRITES
    meta_blob = json.dumps(meta or {}, sort_keys=True).encode()
    sha = _payload_sha(meta_blob, lines, packed)
    header = _HEADER.pack(
        _MAGIC, TRACE_FORMAT_VERSION, flags, len(meta_blob), len(lines), sha
    )
    tmp = Path(path).with_suffix(Path(path).suffix + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(header)
        fh.write(meta_blob)
        fh.write(lines.tobytes())
        if packed is not None:
            fh.write(packed.tobytes())
    tmp.replace(path)


class TraceFile:
    """A verified, memory-mapped RPAT trace.

    ``lines`` is a read-only ``np.memmap`` over the payload; ``writes`` is
    the unpacked boolean mask (or None).  Construction verifies the whole
    envelope — magic, version, structural sizes, payload checksum — and
    raises a one-line :class:`~repro.errors.TraceError` on any damage.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        try:
            size = self.path.stat().st_size
            with open(self.path, "rb") as fh:
                head = fh.read(_HEADER.size)
        except OSError as e:
            raise TraceError(f"{path}: cannot read trace ({e.__class__.__name__})") from None
        if len(head) < _HEADER.size:
            raise TraceError(f"{path}: truncated trace (no header)")
        magic, version, flags, meta_len, count, sha = _HEADER.unpack(head)
        if magic != _MAGIC:
            raise TraceError(f"{path}: not a repro trace (bad magic)")
        if version != TRACE_FORMAT_VERSION:
            raise TraceError(
                f"{path}: unsupported trace format v{version} "
                f"(this build reads v{TRACE_FORMAT_VERSION})"
            )
        if count == 0:
            raise TraceError(f"{path}: empty trace")
        writes_len = -(-count // 8) if flags & _FLAG_WRITES else 0
        expected = _HEADER.size + meta_len + 8 * count + writes_len
        if size != expected:
            raise TraceError(
                f"{path}: truncated or padded trace "
                f"({size} bytes, header promises {expected})"
            )
        with open(self.path, "rb") as fh:
            fh.seek(_HEADER.size)
            meta_blob = fh.read(meta_len)
        lines = np.memmap(
            self.path, dtype="<i8", mode="r", offset=_HEADER.size + meta_len,
            shape=(count,),
        )
        packed = None
        if writes_len:
            packed = np.fromfile(
                self.path, dtype=np.uint8, count=writes_len,
                offset=_HEADER.size + meta_len + 8 * count,
            )
        if _payload_sha(meta_blob, lines, packed) != sha:
            raise TraceError(f"{path}: trace checksum mismatch (corrupt payload)")
        try:
            meta = json.loads(meta_blob.decode())
        except (UnicodeDecodeError, ValueError):
            raise TraceError(f"{path}: trace metadata is not valid JSON") from None
        if not isinstance(meta, dict):
            raise TraceError(f"{path}: trace metadata must be a JSON object")
        self.meta = meta
        self.lines = lines
        self.writes = (
            np.unpackbits(packed, count=count).astype(bool) if packed is not None else None
        )
        self.count = int(count)
        self.sha256 = sha.hex()
        self._footprint: int | None = None

    def __len__(self) -> int:
        return self.count

    def footprint_lines(self) -> int:
        """Distinct lines in the trace (computed once, then cached)."""
        if self._footprint is None:
            self._footprint = int(np.unique(self.lines).size)
        return self._footprint


def open_trace(path: str | Path) -> TraceFile:
    """Open and fully verify an RPAT trace file."""
    return TraceFile(path)


def trace_token(path: str | Path) -> dict:
    """Content token for cache keys: payload identity, not the path.

    Two byte-identical traces at different paths produce the same token, so
    the sweep result cache dedupes across copies; a re-recorded trace with
    different content invalidates cleanly.
    """
    tf = open_trace(path)
    return {"trace_sha256": tf.sha256, "count": tf.count, "meta": tf.meta}


def record_trace(
    workload: Workload,
    n_lines: int,
    path: str | Path,
    *,
    chunk_lines: int = 65536,
) -> None:
    """Record ``n_lines`` accesses of ``workload`` into an RPAT file.

    The workload is reset first, so the recording always starts from its
    initial state and a record → replay round trip is bit-exact.  The
    workload's timing scalars ride along in the metadata blob and become
    the replayer's scalars.
    """
    if n_lines < 1:
        raise TraceError(f"{path}: need at least one access to record")
    workload.reset()
    chunks: list[np.ndarray] = []
    masks: list[np.ndarray] = []
    remaining = n_lines
    has_writes = workload.write_fraction > 0.0
    while remaining > 0:
        take = min(chunk_lines, remaining)
        lines, writes = workload.chunk(take)
        chunks.append(np.asarray(lines, dtype=np.int64))
        if has_writes:
            masks.append(
                np.asarray(writes, dtype=bool)
                if writes is not None
                else np.zeros(take, dtype=bool)
            )
        remaining -= take
    write_trace(
        path,
        np.concatenate(chunks),
        writes=np.concatenate(masks) if has_writes else None,
        meta={
            "benchmark": workload.name,
            "mem_fraction": workload.mem_fraction,
            "cpi_base": workload.cpi_base,
            "mlp": workload.mlp,
            "accesses_per_line": workload.accesses_per_line,
            "write_fraction": workload.write_fraction,
        },
    )


class TraceReplayWorkload(Workload):
    """Cyclic replay of a recorded access stream.

    Timing scalars default to the recording's metadata; the stream itself is
    exactly the recorded one, wrapped around at the end — the replay analog
    of the cyclic synthetic patterns.  Recorded write flags are replayed
    positionally (not re-drawn), so the stream is fully deterministic.
    """

    def __init__(
        self,
        name: str,
        lines: np.ndarray,
        *,
        writes: np.ndarray | None = None,
        mem_fraction: float = 0.3,
        cpi_base: float = 0.7,
        mlp: float = 2.0,
        accesses_per_line: float = 1.0,
        write_fraction: float = 0.0,
        seed: int | None = None,
    ):
        super().__init__(
            name,
            mem_fraction=mem_fraction,
            cpi_base=cpi_base,
            mlp=mlp,
            accesses_per_line=accesses_per_line,
            write_fraction=write_fraction,
            seed=seed,
        )
        if len(lines) == 0:
            raise TraceError(f"{name}: cannot replay an empty trace")
        self._trace_lines = lines
        self._trace_writes = writes
        self._footprint: int | None = None
        self._pos = 0

    def _take(self, arr: np.ndarray, n: int) -> np.ndarray:
        total = len(self._trace_lines)
        out = np.empty(n, dtype=arr.dtype)
        filled = 0
        pos = self._pos
        while filled < n:
            take = min(n - filled, total - pos)
            out[filled : filled + take] = arr[pos : pos + take]
            pos = (pos + take) % total
            filled += take
        return out

    def chunk(self, n_lines: int) -> tuple[np.ndarray, np.ndarray | None]:
        lines = self._take(self._trace_lines, n_lines).astype(np.int64, copy=False)
        writes = None
        if self._trace_writes is not None:
            writes = self._take(self._trace_writes, n_lines)
        self._pos = (self._pos + n_lines) % len(self._trace_lines)
        return lines, writes

    def _lines(self, n_lines: int) -> np.ndarray:  # pragma: no cover - chunk() overrides
        return self.chunk(n_lines)[0]

    def reset(self) -> None:
        super().reset()
        self._pos = 0

    def footprint_lines(self) -> int:
        if self._footprint is None:
            self._footprint = int(np.unique(np.asarray(self._trace_lines)).size)
        return self._footprint


def replay_trace(path: str | Path, *, name: str | None = None) -> TraceReplayWorkload:
    """Open ``path`` and build its mmap-backed replay workload.

    The line array stays memory-mapped — chunks copy only the slices they
    emit — so replaying a multi-GB trace costs O(chunk) resident memory.
    """
    tf = open_trace(path)
    meta = tf.meta
    return TraceReplayWorkload(
        name or str(meta.get("benchmark", Path(path).stem)),
        tf.lines,
        writes=tf.writes,
        mem_fraction=float(meta.get("mem_fraction", 0.3)),
        cpi_base=float(meta.get("cpi_base", 0.7)),
        mlp=float(meta.get("mlp", 2.0)),
        accesses_per_line=float(meta.get("accesses_per_line", 1.0)),
        write_fraction=float(meta.get("write_fraction", 0.0)),
    )


#: default recording budget of the self-recorded replay family (lines)
REPLAY_RECORD_LINES = 131072


def make_replay(
    source: str = "",
    working_set_mb: float = 2.0,
    *,
    record_lines: int = REPLAY_RECORD_LINES,
    instance: int = 0,
    seed: int = 0,
) -> TraceReplayWorkload:
    """The in-memory record → replay family member (no file involved).

    Records ``record_lines`` accesses of a source workload — the suite
    benchmark named ``source``, or a ``working_set_mb`` uniform-random
    micro benchmark when ``source`` is empty — then replays them
    cyclically.  Pure and deterministic in (source, seed), so the family is
    picklable by content and cache-keyable like every other TargetSpec
    kind.
    """
    from .micro import random_micro
    from .spec import make_benchmark

    if record_lines < 1:
        raise ConfigError("replay needs a positive recording budget")
    if source:
        wl = make_benchmark(source, instance=instance, seed=seed)
    else:
        wl = random_micro(working_set_mb, instance=instance, seed=seed)
    wl.reset()
    chunks = []
    masks = []
    remaining = record_lines
    while remaining > 0:
        take = min(65536, remaining)
        lines, writes = wl.chunk(take)
        chunks.append(np.asarray(lines, dtype=np.int64))
        masks.append(
            np.asarray(writes, dtype=bool)
            if writes is not None
            else np.zeros(take, dtype=bool)
        )
        remaining -= take
    return TraceReplayWorkload(
        f"replay({wl.name})",
        np.concatenate(chunks),
        writes=np.concatenate(masks) if wl.write_fraction > 0 else None,
        mem_fraction=wl.mem_fraction,
        cpi_base=wl.cpi_base,
        mlp=wl.mlp,
        accesses_per_line=wl.accesses_per_line,
        write_fraction=wl.write_fraction,
    )
