"""Phased workloads: alternate between sub-workloads over time.

403.gcc is the paper's problem child: its phases are short enough that a 1B-
instruction measurement interval straddles them, inflating the dynamic-
pirating CPI error to 23% (Table III).  :class:`PhasedWorkload` reproduces
that structure by cycling through sub-workloads with per-phase instruction
budgets.

Phase position is tracked in *emitted lines* converted through each phase's
access density, so a thread's instruction accounting and the phase schedule
agree without the machine knowing about phases.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .base import Workload


class PhasedWorkload(Workload):
    """Cycle through ``(workload, instructions)`` phases forever.

    Timing parameters (``cpi_base``, ``mem_fraction``, ``mlp``, ...) must be
    identical across phases — the phases differ in *where* they access memory,
    which is what drives their differing cache behaviour; keeping the scalar
    parameters uniform lets the machine treat the thread as one workload.
    """

    def __init__(
        self,
        name: str,
        phases: list[tuple[Workload, float]],
        *,
        seed: int | None = None,
    ):
        if not phases:
            raise ConfigError(f"{name}: need at least one phase")
        first = phases[0][0]
        for wl, instr in phases:
            if instr <= 0:
                raise ConfigError(f"{name}: phase lengths must be positive")
            if (
                wl.mem_fraction != first.mem_fraction
                or wl.cpi_base != first.cpi_base
                or wl.mlp != first.mlp
                or wl.accesses_per_line != first.accesses_per_line
                or wl.write_fraction != first.write_fraction
            ):
                raise ConfigError(
                    f"{name}: all phases must share scalar timing parameters"
                )
        super().__init__(
            name,
            mem_fraction=first.mem_fraction,
            cpi_base=first.cpi_base,
            mlp=first.mlp,
            accesses_per_line=first.accesses_per_line,
            write_fraction=first.write_fraction,
            seed=seed,
        )
        self.phases = phases
        self._phase_idx = 0
        self._lines_left = self._phase_budget_lines(0)

    def _phase_budget_lines(self, idx: int) -> float:
        wl, instr = self.phases[idx]
        return instr * wl.mem_fraction / wl.accesses_per_line

    @property
    def current_phase(self) -> int:
        """Index of the phase currently being emitted (for tests)."""
        return self._phase_idx

    def _lines(self, n_lines: int) -> np.ndarray:
        pieces: list[np.ndarray] = []
        remaining = n_lines
        while remaining > 0:
            take = remaining
            if self._lines_left < take:
                take = max(int(self._lines_left), 1)
            pieces.append(self.phases[self._phase_idx][0]._lines(take))
            self._lines_left -= take
            remaining -= take
            if self._lines_left <= 0:
                self._phase_idx = (self._phase_idx + 1) % len(self.phases)
                self._lines_left += self._phase_budget_lines(self._phase_idx)
        if len(pieces) == 1:
            return pieces[0]
        return np.concatenate(pieces)

    def footprint_lines(self) -> int:
        return sum(wl.footprint_lines() for wl, _ in self.phases)

    def reset(self) -> None:
        super().reset()
        for wl, _ in self.phases:
            wl.reset()
        self._phase_idx = 0
        self._lines_left = self._phase_budget_lines(0)
