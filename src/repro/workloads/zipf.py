"""Zipf-distributed request streams (the Icarus-style workload generator).

Content-distribution workloads — and many irregular applications — touch a
bounded object population with a heavily skewed popularity law: the k-th
most popular object receives a share proportional to ``k**-alpha``.  A
:class:`ZipfPattern` models that as a line-address stream: popularity ranks
are mapped onto the region through a seeded permutation (so the hot lines
are scattered across cache sets instead of clustered at the region base),
and each access draws a rank by inverting the closed-form CDF.

``alpha`` sculpts the fetch-ratio curve: ``alpha = 0`` degenerates to a
uniform :class:`~repro.workloads.patterns.RandomPattern` (one knee at the
region size), while large ``alpha`` concentrates accesses on a tiny hot set
and flattens the curve long before the footprint is resident.  The
rank-frequency slope at a fixed seed is pinned by a statistical test in
``tests/test_workload_zoo.py``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..rng import stable_seed
from ..units import MB
from .base import Workload, instance_base
from .mixture import MixtureComponent, MixtureWorkload
from .patterns import Pattern, RandomPattern
from .spec import HOT_REGION_BYTES

#: lines per MB at the fixed 64B line size
_LINES_PER_MB = MB // 64

#: widest popularity skew the generator accepts (steeper laws degenerate to
#: a single line and make the inverse-CDF numerically pointless)
MAX_ALPHA = 8.0


class ZipfPattern(Pattern):
    """Zipf(``alpha``) line accesses over a region.

    Rank ``k`` (1-based) is accessed with probability proportional to
    ``k**-alpha``; a seeded permutation maps ranks onto region offsets.
    ``alpha = 0`` is exactly uniform.  Sampling is vectorized: each chunk
    costs one RNG draw plus a binary search into the precomputed CDF.
    """

    def __init__(
        self,
        base_line: int,
        region_lines: int,
        *,
        alpha: float = 0.8,
        seed: int | None = None,
    ):
        super().__init__(base_line, region_lines, seed)
        if not 0.0 <= alpha <= MAX_ALPHA:
            raise ConfigError(f"zipf alpha must be in [0, {MAX_ALPHA:g}], got {alpha}")
        self.alpha = float(alpha)
        ranks = np.arange(1, region_lines + 1, dtype=np.float64)
        weights = ranks ** -self.alpha
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        # rank -> region offset; drawn first so reset() replays the exact
        # same construction order as __init__ (cf. PointerChasePattern)
        self._perm = self._rng.permutation(region_lines).astype(np.int64)

    def lines(self, n: int) -> np.ndarray:
        u = self._rng.random(n)
        idx = np.searchsorted(self._cdf, u, side="right")
        return self._perm[idx] + self.base_line

    def reset(self) -> None:
        super().reset()
        self._perm = self._rng.permutation(self.region_lines).astype(np.int64)


def make_zipf(
    working_set_mb: float = 2.0,
    alpha: float = 0.8,
    *,
    weight: float = 0.12,
    instance: int = 0,
    seed: int = 0,
) -> Workload:
    """A suite-shaped workload around one Zipf region.

    ``weight`` is the absolute fraction of memory accesses the Zipf region
    receives; the remainder goes to the implicit L1-resident hot region,
    matching the per-access scale of :mod:`repro.workloads.spec`.  Timing
    scalars sit in the middle of the suite's range so the family conforms
    under the same 3% oracle as the built-in benchmarks.
    """
    if working_set_mb <= 0:
        raise ConfigError("zipf working set must be positive")
    if not 0.0 < weight <= 1.0:
        raise ConfigError(f"zipf weight must be in (0, 1], got {weight}")
    base = instance_base(instance)
    region_lines = max(int(working_set_mb * _LINES_PER_MB), 1)
    components = [
        MixtureComponent(
            pattern=ZipfPattern(
                base, region_lines, alpha=alpha, seed=stable_seed(seed, "zipf", 0)
            ),
            weight=weight,
        )
    ]
    hot = 1.0 - weight
    if hot > 1e-9:
        components.append(
            MixtureComponent(
                pattern=RandomPattern(
                    base + region_lines + _LINES_PER_MB,
                    HOT_REGION_BYTES // 64,
                    seed=stable_seed(seed, "zipf", "hot"),
                ),
                weight=hot,
            )
        )
    return MixtureWorkload(
        f"zipf(a={alpha:g},{working_set_mb:g}MB)",
        components,
        mem_fraction=0.32,
        cpi_base=0.70,
        mlp=2.0,
        accesses_per_line=1.0,
        write_fraction=0.20,
        seed=stable_seed(seed, "zipf", "mix"),
    )
