"""Primitive address patterns.

Each pattern is a deterministic, resettable generator of line *offsets*
within a region of ``region_lines`` lines starting at ``base_line``.
Patterns are the leaves composed by :class:`~repro.workloads.mixture.
MixtureWorkload`; they can also be used as standalone workload streams.

All generators are vectorized: a chunk of ``n`` offsets costs O(n) numpy
work, not n Python iterations.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..rng import make_rng


class Pattern:
    """Base class: a stream of line addresses inside one region."""

    def __init__(self, base_line: int, region_lines: int, seed: int | None = None):
        if region_lines <= 0:
            raise ConfigError("region_lines must be positive")
        if base_line < 0:
            raise ConfigError("base_line must be non-negative")
        self.base_line = base_line
        self.region_lines = region_lines
        self._seed = seed
        self._rng = make_rng(seed)

    def lines(self, n: int) -> np.ndarray:
        """Next ``n`` absolute line addresses (int64)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Rewind to the initial state."""
        self._rng = make_rng(self._seed)

    def footprint_lines(self) -> int:
        """Distinct lines this pattern touches."""
        return self.region_lines


class SequentialPattern(Pattern):
    """Cyclic unit-stride sweep, optionally broken into segments.

    With ``segment_lines`` set, the stream jumps to a random segment-aligned
    position every ``segment_lines`` lines.  Real stream prefetchers stop at
    page boundaries; segments model that plus multi-array interleaving, and
    directly control the fetch-to-miss ratio: with a prefetch trigger of
    ``t``, each segment costs ``t`` demand misses out of ``segment_lines``
    fetches (this is how the lbm stand-in gets its 8x gap, §IV).
    """

    def __init__(
        self,
        base_line: int,
        region_lines: int,
        *,
        segment_lines: int | None = None,
        seed: int | None = None,
    ):
        super().__init__(base_line, region_lines, seed)
        if segment_lines is not None:
            if segment_lines <= 0 or segment_lines > region_lines:
                raise ConfigError("segment_lines must be in [1, region_lines]")
        self.segment_lines = segment_lines
        self._pos = 0
        self._seg_left = segment_lines if segment_lines else 0

    def lines(self, n: int) -> np.ndarray:
        base = self.base_line
        region = self.region_lines
        if self.segment_lines is None:
            out = (self._pos + np.arange(n, dtype=np.int64)) % region + base
            self._pos = (self._pos + n) % region
            return out
        # segmented: emit runs, jumping to a random aligned segment when a
        # run is exhausted
        seg = self.segment_lines
        nseg = max(region // seg, 1)
        out = np.empty(n, dtype=np.int64)
        filled = 0
        while filled < n:
            if self._seg_left <= 0:
                self._pos = int(self._rng.integers(0, nseg)) * seg
                self._seg_left = seg
            take = min(n - filled, self._seg_left)
            out[filled : filled + take] = (
                self._pos + np.arange(take, dtype=np.int64)
            ) % region + base
            self._pos = (self._pos + take) % region
            self._seg_left -= take
            filled += take
        return out

    def reset(self) -> None:
        super().reset()
        self._pos = 0
        self._seg_left = self.segment_lines if self.segment_lines else 0


class RandomPattern(Pattern):
    """Uniform random line accesses over the region."""

    def lines(self, n: int) -> np.ndarray:
        return self._rng.integers(0, self.region_lines, size=n, dtype=np.int64) + self.base_line


class StridedPattern(Pattern):
    """Cyclic access with a fixed stride in lines (> 1 defeats the stream
    prefetcher while preserving regularity)."""

    def __init__(
        self,
        base_line: int,
        region_lines: int,
        *,
        stride_lines: int = 2,
        seed: int | None = None,
    ):
        super().__init__(base_line, region_lines, seed)
        if stride_lines <= 0:
            raise ConfigError("stride_lines must be positive")
        self.stride_lines = stride_lines
        self._pos = 0

    def lines(self, n: int) -> np.ndarray:
        region = self.region_lines
        idx = (self._pos + np.arange(n, dtype=np.int64) * self.stride_lines) % region
        self._pos = int((self._pos + n * self.stride_lines) % region)
        return idx + self.base_line

    def footprint_lines(self) -> int:
        # a stride that divides the region size only ever revisits a subset
        g = np.gcd(self.stride_lines, self.region_lines)
        return self.region_lines // int(g)

    def reset(self) -> None:
        super().reset()
        self._pos = 0


class PointerChasePattern(Pattern):
    """Walk of a random Hamiltonian cycle over the region.

    Models linked-data traversal (mcf, omnetpp): every line is visited once
    per lap like a sweep, but the address sequence is de-correlated so the
    stream prefetcher cannot help, and callers should pair it with a low
    ``mlp`` since each load depends on the previous one.
    """

    def __init__(self, base_line: int, region_lines: int, seed: int | None = None):
        super().__init__(base_line, region_lines, seed)
        self._order = self._rng.permutation(region_lines).astype(np.int64)
        self._pos = 0

    def lines(self, n: int) -> np.ndarray:
        region = self.region_lines
        idx = (self._pos + np.arange(n, dtype=np.int64)) % region
        self._pos = int((self._pos + n) % region)
        return self._order[idx] + self.base_line

    def reset(self) -> None:
        super().reset()
        self._order = self._rng.permutation(self.region_lines).astype(np.int64)
        self._pos = 0
