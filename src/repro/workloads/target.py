"""Picklable target-workload specifications.

The measurement harnesses accept any zero-argument factory, which is
convenient interactively but fatal for process-pool fan-out: closures and
lambdas do not pickle, and an unpicklable factory cannot cross a worker
boundary.  A :class:`TargetSpec` is the spec-not-closure alternative: a
frozen dataclass naming a workload *by content* (kind, name, instance,
seed) that

* is itself a zero-argument factory (``spec()`` builds a fresh workload),
  so every existing harness accepts it unchanged,
* pickles, so :mod:`repro.core.parallel` can ship it to worker processes,
* exposes a canonical :meth:`token`, so the sweep result cache can key
  entries by workload content rather than by object identity.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..errors import ConfigError
from .base import Workload
from .cigar import make_cigar
from .micro import random_micro, sequential_micro
from .spec import benchmark_spec, make_benchmark

#: Workload families a :class:`TargetSpec` can name.
TARGET_KINDS = ("benchmark", "cigar", "micro.random", "micro.sequential")


@dataclass(frozen=True)
class TargetSpec:
    """A workload named by content: picklable, callable, cache-keyable.

    ``kind`` selects the family; ``name`` is the suite benchmark for
    ``kind="benchmark"`` (ignored otherwise); ``working_set_mb`` sizes the
    Fig. 4 micro benchmarks (ignored otherwise).  ``instance`` and ``seed``
    mean what they mean everywhere else in :mod:`repro.workloads`.
    """

    kind: str
    name: str = ""
    instance: int = 0
    seed: int = 0
    working_set_mb: float = 4.0

    def __post_init__(self) -> None:
        if self.kind not in TARGET_KINDS:
            raise ConfigError(f"unknown target kind {self.kind!r}; known: {TARGET_KINDS}")
        if self.kind == "benchmark":
            benchmark_spec(self.name)  # raises on unknown names
        if self.kind.startswith("micro.") and not self.working_set_mb > 0:
            raise ConfigError("micro benchmarks need a positive working set")

    def __call__(self) -> Workload:
        """Build a fresh workload instance (the factory protocol)."""
        if self.kind == "benchmark":
            return make_benchmark(self.name, instance=self.instance, seed=self.seed)
        if self.kind == "cigar":
            return make_cigar(instance=self.instance, seed=self.seed)
        if self.kind == "micro.random":
            return random_micro(
                self.working_set_mb, instance=self.instance, seed=self.seed
            )
        return sequential_micro(
            self.working_set_mb, instance=self.instance, seed=self.seed
        )

    def token(self) -> dict:
        """Canonical content token for cache keys (stable across runs)."""
        return {"target_spec": asdict(self)}


def benchmark_target(name: str, *, instance: int = 0, seed: int = 0) -> TargetSpec:
    """Spec for a suite benchmark or the cigar application."""
    if name == "cigar":
        return TargetSpec(kind="cigar", instance=instance, seed=seed)
    return TargetSpec(kind="benchmark", name=name, instance=instance, seed=seed)
