"""Picklable target-workload specifications.

The measurement harnesses accept any zero-argument factory, which is
convenient interactively but fatal for process-pool fan-out: closures and
lambdas do not pickle, and an unpicklable factory cannot cross a worker
boundary.  A :class:`TargetSpec` is the spec-not-closure alternative: a
frozen dataclass naming a workload *by content* (kind, name, instance,
seed) that

* is itself a zero-argument factory (``spec()`` builds a fresh workload),
  so every existing harness accepts it unchanged,
* pickles, so :mod:`repro.core.parallel` can ship it to worker processes,
* exposes a canonical :meth:`token`, so the sweep result cache can key
  entries by workload content rather than by object identity.

Beyond the calibrated suite, a spec can name the workload-zoo families:
``zipf`` (skewed request streams), ``sharing`` (one thread of a
data-sharing multithreaded target), ``replay`` (in-memory record → replay
of a named source), and ``trace`` (a recorded RPAT file replayed via
mmap).  ``trace`` is the one kind whose content lives outside the spec;
its token therefore embeds the payload sha256 so cache keys follow the
bytes, not the path.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..errors import ConfigError
from .base import Workload
from .cigar import make_cigar
from .micro import random_micro, sequential_micro
from .sharing import make_sharing
from .spec import benchmark_spec, make_benchmark
from .tracefile import make_replay, replay_trace, trace_token
from .zipf import make_zipf

#: Workload families a :class:`TargetSpec` can name.
TARGET_KINDS = (
    "benchmark",
    "cigar",
    "micro.random",
    "micro.sequential",
    "zipf",
    "sharing",
    "replay",
    "trace",
)

#: Zoo families addressable by bare name in the CLI (``repro validate``
#: and grid configs), alongside the calibrated suite benchmarks.
ZOO_NAMES = ("zipf", "sharing", "replay")


@dataclass(frozen=True)
class TargetSpec:
    """A workload named by content: picklable, callable, cache-keyable.

    ``kind`` selects the family; ``name`` is the suite benchmark for
    ``kind="benchmark"`` and the optional source benchmark for
    ``kind="replay"`` (ignored otherwise); ``working_set_mb`` sizes the
    Fig. 4 micro benchmarks and the zoo generators.  ``alpha`` is the Zipf
    skew, ``shared_fraction`` the sharing knob, ``path`` the RPAT file for
    ``kind="trace"``.  ``instance`` and ``seed`` mean what they mean
    everywhere else in :mod:`repro.workloads`.
    """

    kind: str
    name: str = ""
    instance: int = 0
    seed: int = 0
    working_set_mb: float = 4.0
    alpha: float = 0.8
    shared_fraction: float = 0.5
    path: str = ""

    def __post_init__(self) -> None:
        if self.kind not in TARGET_KINDS:
            raise ConfigError(f"unknown target kind {self.kind!r}; known: {TARGET_KINDS}")
        if self.kind == "benchmark":
            benchmark_spec(self.name)  # raises on unknown names
        if self.kind == "replay" and self.name:
            benchmark_spec(self.name)
        needs_ws = self.kind.startswith("micro.") or self.kind in (
            "zipf",
            "sharing",
            "replay",
        )
        if needs_ws and not self.working_set_mb > 0:
            raise ConfigError(f"{self.kind} targets need a positive working set")
        if self.kind == "zipf" and not 0.0 <= self.alpha <= 8.0:
            raise ConfigError(f"zipf alpha must be in [0, 8], got {self.alpha}")
        if self.kind == "sharing" and not 0.0 <= self.shared_fraction <= 1.0:
            raise ConfigError(
                f"shared_fraction must be in [0, 1], got {self.shared_fraction}"
            )
        if self.kind == "trace" and not self.path:
            raise ConfigError("trace targets need a path to an RPAT file")

    def __call__(self) -> Workload:
        """Build a fresh workload instance (the factory protocol)."""
        if self.kind == "benchmark":
            return make_benchmark(self.name, instance=self.instance, seed=self.seed)
        if self.kind == "cigar":
            return make_cigar(instance=self.instance, seed=self.seed)
        if self.kind == "micro.random":
            return random_micro(
                self.working_set_mb, instance=self.instance, seed=self.seed
            )
        if self.kind == "micro.sequential":
            return sequential_micro(
                self.working_set_mb, instance=self.instance, seed=self.seed
            )
        if self.kind == "zipf":
            return make_zipf(
                self.working_set_mb,
                self.alpha,
                instance=self.instance,
                seed=self.seed,
            )
        if self.kind == "sharing":
            return make_sharing(
                self.shared_fraction,
                self.working_set_mb,
                instance=self.instance,
                seed=self.seed,
            )
        if self.kind == "replay":
            return make_replay(
                self.name,
                self.working_set_mb,
                instance=self.instance,
                seed=self.seed,
            )
        return replay_trace(self.path)

    def token(self) -> dict:
        """Canonical content token for cache keys (stable across runs).

        For ``kind="trace"`` the token is keyed by the file's payload
        sha256 (via :func:`~repro.workloads.tracefile.trace_token`), so
        moving or copying a trace does not fork the cache and editing one
        invalidates it.
        """
        tok = asdict(self)
        if self.kind == "trace":
            tok["path"] = trace_token(self.path)
        return {"target_spec": tok}


def benchmark_target(name: str, *, instance: int = 0, seed: int = 0) -> TargetSpec:
    """Spec for a suite benchmark, the cigar application, or a zoo family."""
    if name == "cigar":
        return TargetSpec(kind="cigar", instance=instance, seed=seed)
    if name in ZOO_NAMES:
        return zoo_target(name, instance=instance, seed=seed)
    return TargetSpec(kind="benchmark", name=name, instance=instance, seed=seed)


def zoo_target(
    name: str,
    *,
    working_set_mb: float = 2.0,
    alpha: float = 0.8,
    shared_fraction: float = 0.5,
    instance: int = 0,
    seed: int = 0,
) -> TargetSpec:
    """Spec for a workload-zoo family member at its default operating point."""
    if name not in ZOO_NAMES:
        raise ConfigError(f"unknown zoo family {name!r}; known: {ZOO_NAMES}")
    return TargetSpec(
        kind=name,
        instance=instance,
        seed=seed,
        working_set_mb=working_set_mb,
        alpha=alpha,
        shared_fraction=shared_fraction,
    )
