"""Workload base class and address-space layout.

A workload is an infinite, deterministic generator of line addresses plus the
scalar timing parameters the core model needs (``cpi_base``, ``mem_fraction``,
``mlp``).  Termination is imposed from outside via a thread's instruction
limit, matching how the experiments run benchmarks "to completion".

Address spaces are disjoint by construction: every workload instance owns the
line-address range starting at :func:`instance_base`, and the Pirate lives in
its own range far above.  This is what lets the hierarchy's owner-based
back-invalidation be exact (``MachineConfig.private_data``).

Line granularity: the simulator streams *line* addresses, not word
addresses.  Code that walks an array touches each 64B line several times; the
``accesses_per_line`` parameter records how many architectural accesses each
emitted line address stands for, and the machine books the extras as L1 hits.
This keeps fetch/miss *ratios* (per access, §I-B) on the paper's scale while
simulating an order of magnitude fewer events.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..rng import make_rng

#: Line-address stride between workload instances: 2^32 lines = 256 TB of
#: address space each, so instances can never alias.
_INSTANCE_STRIDE = 1 << 32

#: Line-address base of the Pirate's working set (``repro.core.pirate``).
PIRATE_BASE = 1 << 40


def instance_base(instance_id: int) -> int:
    """Base line address of workload instance ``instance_id``."""
    if instance_id < 0:
        raise ConfigError("instance_id must be non-negative")
    return (instance_id + 1) * _INSTANCE_STRIDE


class Workload:
    """Base class for all workloads (implements ``WorkloadLike``)."""

    def __init__(
        self,
        name: str,
        *,
        mem_fraction: float,
        cpi_base: float,
        mlp: float = 2.0,
        accesses_per_line: float = 1.0,
        write_fraction: float = 0.0,
        seed: int | None = None,
    ):
        if not 0.0 < mem_fraction <= 1.0:
            raise ConfigError(f"{name}: mem_fraction must be in (0, 1]")
        if cpi_base <= 0.0:
            raise ConfigError(f"{name}: cpi_base must be positive")
        if mlp <= 0.0:
            raise ConfigError(f"{name}: mlp must be positive")
        if accesses_per_line < 1.0:
            raise ConfigError(f"{name}: accesses_per_line must be >= 1")
        if not 0.0 <= write_fraction <= 1.0:
            raise ConfigError(f"{name}: write_fraction must be in [0, 1]")
        self.name = name
        self.mem_fraction = mem_fraction
        self.cpi_base = cpi_base
        self.mlp = mlp
        self.accesses_per_line = accesses_per_line
        self.write_fraction = write_fraction
        self.bypass_private = False
        self._seed = seed
        self._rng = make_rng(seed)

    # -- protocol ---------------------------------------------------------------

    def chunk(self, n_lines: int) -> tuple[np.ndarray, np.ndarray | None]:
        """Next ``n_lines`` line addresses and an optional write mask."""
        lines = self._lines(n_lines)
        if self.write_fraction > 0.0:
            writes = self._rng.random(n_lines) < self.write_fraction
        else:
            writes = None
        return lines, writes

    def _lines(self, n_lines: int) -> np.ndarray:
        """Produce the next line addresses; subclasses implement this."""
        raise NotImplementedError

    def reset(self) -> None:
        """Rewind the generator to its initial state."""
        self._rng = make_rng(self._seed)

    # -- introspection -------------------------------------------------------------

    def footprint_lines(self) -> int:
        """Total distinct lines this workload can touch (0 if unbounded)."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
