"""Mixture workloads: weighted interleavings of primitive patterns.

A benchmark is modelled as a set of memory regions, each accessed with its
own pattern and relative frequency.  The per-access interleaving is drawn
i.i.d. from the component weights, which yields a smooth, phase-free stream;
:mod:`repro.workloads.phased` composes mixtures into phases when needed.

The shape of the resulting fetch-ratio-vs-cache-size curve follows from the
component footprints: a component of footprint ``F`` contributes misses once
the available cache drops below (roughly) ``F`` plus the hot footprints of
more frequently accessed components — so choosing a spread of region sizes
and weights sculpts the knees seen in the paper's Fig. 6/8 curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .base import Workload
from .patterns import Pattern


@dataclass
class MixtureComponent:
    """One region of a mixture: a pattern and its access weight."""

    pattern: Pattern
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError("component weight must be positive")


class MixtureWorkload(Workload):
    """Weighted interleaving of patterns over disjoint regions."""

    def __init__(
        self,
        name: str,
        components: list[MixtureComponent],
        *,
        mem_fraction: float,
        cpi_base: float,
        mlp: float = 2.0,
        accesses_per_line: float = 1.0,
        write_fraction: float = 0.0,
        seed: int | None = None,
    ):
        super().__init__(
            name,
            mem_fraction=mem_fraction,
            cpi_base=cpi_base,
            mlp=mlp,
            accesses_per_line=accesses_per_line,
            write_fraction=write_fraction,
            seed=seed,
        )
        if not components:
            raise ConfigError(f"{name}: mixture needs at least one component")
        self.components = components
        w = np.array([c.weight for c in components], dtype=np.float64)
        self._probs = w / w.sum()

    def _lines(self, n_lines: int) -> np.ndarray:
        k = len(self.components)
        if k == 1:
            return self.components[0].pattern.lines(n_lines)
        choice = self._rng.choice(k, size=n_lines, p=self._probs)
        out = np.empty(n_lines, dtype=np.int64)
        for c in range(k):
            mask = choice == c
            cnt = int(mask.sum())
            if cnt:
                out[mask] = self.components[c].pattern.lines(cnt)
        return out

    def footprint_lines(self) -> int:
        return sum(c.pattern.footprint_lines() for c in self.components)

    def reset(self) -> None:
        super().reset()
        for c in self.components:
            c.pattern.reset()
