"""The Cigar stand-in: a genetic-algorithm-style workload with a 6MB knee.

§III-A: "We also examined the Cigar application as it has a distinctive jump
in its fetch ratio curve at 6MB", and Fig. 6 (lower-right) shows that jump.
The mechanism is a population buffer of ~6MB swept once per generation: while
the available cache holds the whole population the sweep hits; as soon as it
does not, the cyclic sweep degrades sharply — a fetch-ratio cliff pinned at
the population size.
"""

from __future__ import annotations

from ..rng import stable_seed
from ..units import KB, MB
from .base import Workload, instance_base
from .mixture import MixtureComponent, MixtureWorkload
from .patterns import RandomPattern, SequentialPattern

_LINES_PER_MB = MB // 64

#: Population buffer size (MB) — the paper's knee position.
CIGAR_KNEE_MB = 6.0

#: Access fraction of the population sweep (the rest splits between a small
#: scratch buffer and the L1-resident hot region).
_POPULATION_WEIGHT = 0.35
_SCRATCH_WEIGHT = 0.15


def make_cigar(*, instance: int = 0, seed: int = 0) -> Workload:
    """Build the cigar workload (knee fixed at 6MB, Fig. 6)."""
    base = instance_base(instance)
    population = SequentialPattern(
        base, int(CIGAR_KNEE_MB * _LINES_PER_MB), seed=stable_seed(seed, "cigar-pop")
    )
    scratch = RandomPattern(
        base + 8 * _LINES_PER_MB * 4,  # far past the population buffer
        int(0.15 * _LINES_PER_MB),
        seed=stable_seed(seed, "cigar-scratch"),
    )
    hot = RandomPattern(
        base + 16 * _LINES_PER_MB * 4,
        8 * KB // 64,
        seed=stable_seed(seed, "cigar-hot"),
    )
    return MixtureWorkload(
        "cigar",
        [
            MixtureComponent(pattern=population, weight=_POPULATION_WEIGHT),
            MixtureComponent(pattern=scratch, weight=_SCRATCH_WEIGHT),
            MixtureComponent(
                pattern=hot, weight=1.0 - _POPULATION_WEIGHT - _SCRATCH_WEIGHT
            ),
        ],
        mem_fraction=0.35,
        cpi_base=0.8,
        mlp=3.0,
        accesses_per_line=2.0,
        write_fraction=0.3,
        seed=stable_seed(seed, "cigar-wl"),
    )
