"""Data-sharing multithreaded target family (Yavits et al., arXiv:1602.01329).

The built-in suite models single-threaded programs in disjoint address
spaces.  Shared-memory multithreaded applications break that assumption:
every thread splits its accesses between a *private* partition and a
*shared* footprint common to all threads, and the shared fraction decides
how much effective cache the thread group needs.

:func:`make_sharing` builds one thread of such an application.  The knob is
``shared_fraction`` — the fraction of the explicit footprint (and, because
regions are accessed with uniform density, of the region accesses) that
lands in the shared partition.  The shared region occupies the *same* line
addresses for every thread of the same family ``seed``, so co-running
threads genuinely hit each other's lines; private regions are disjoint per
``thread_id``.  A statistical test pins the realized access fraction to the
knob (``tests/test_workload_zoo.py``).

Single-target measurements (one thread plus the Pirate) work under the
default ``MachineConfig.private_data=True``.  When co-running *several*
threads of one sharing family through :mod:`repro.core.multitarget`, set
``private_data=False`` — lines in the shared partition are fetched by more
than one core, so back-invalidation must visit all of them.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..rng import stable_seed
from ..units import MB
from .base import Workload, instance_base
from .mixture import MixtureComponent, MixtureWorkload
from .patterns import RandomPattern
from .spec import HOT_REGION_BYTES

#: lines per MB at the fixed 64B line size
_LINES_PER_MB = MB // 64

#: Base line address of the shared partition: above every per-instance slot
#: this library hands out (instance ids stay far below ~190) and below the
#: Pirate's range at 1 << 40, so sharing threads alias only where intended.
SHARED_REGION_BASE = 3 << 38

#: pad between per-thread private slots so they never alias (lines)
_PRIVATE_PAD_LINES = _LINES_PER_MB


def make_sharing(
    shared_fraction: float = 0.5,
    footprint_mb: float = 2.0,
    *,
    num_threads: int = 2,
    thread_id: int = 0,
    instance: int = 0,
    seed: int = 0,
    weight: float = 0.3,
) -> Workload:
    """One thread of a data-sharing multithreaded target.

    ``footprint_mb`` is the thread's explicit footprint; a
    ``shared_fraction`` slice of it is the family-wide shared partition
    (same absolute lines for every ``thread_id`` under the same ``seed``)
    and the rest is thread-private.  ``weight`` is the absolute access
    fraction of the explicit regions together; the remainder models the
    L1-resident stack, as everywhere in :mod:`repro.workloads.spec`.
    """
    if not 0.0 <= shared_fraction <= 1.0:
        raise ConfigError(
            f"shared_fraction must be in [0, 1], got {shared_fraction}"
        )
    if footprint_mb <= 0:
        raise ConfigError("sharing footprint must be positive")
    if num_threads < 1:
        raise ConfigError(f"num_threads must be >= 1, got {num_threads}")
    if not 0 <= thread_id < num_threads:
        raise ConfigError(
            f"thread_id must be in [0, {num_threads}), got {thread_id}"
        )
    if not 0.0 < weight <= 1.0:
        raise ConfigError(f"sharing weight must be in (0, 1], got {weight}")

    total_lines = max(int(footprint_mb * _LINES_PER_MB), 1)
    shared_lines = int(round(total_lines * shared_fraction))
    private_lines = total_lines - shared_lines

    components = []
    if shared_lines > 0:
        # keyed by the family seed only — every thread addresses the same
        # shared lines; the per-thread RNG seed just decorrelates the order
        components.append(
            MixtureComponent(
                pattern=RandomPattern(
                    SHARED_REGION_BASE,
                    shared_lines,
                    seed=stable_seed(seed, "sharing", "shared", thread_id),
                ),
                weight=weight * shared_fraction,
            )
        )
    if private_lines > 0:
        slot = instance_base(instance) + thread_id * (
            total_lines + _PRIVATE_PAD_LINES
        )
        components.append(
            MixtureComponent(
                pattern=RandomPattern(
                    slot,
                    private_lines,
                    seed=stable_seed(seed, "sharing", "private", thread_id),
                ),
                weight=weight * (1.0 - shared_fraction),
            )
        )
    hot = 1.0 - weight
    if hot > 1e-9 or not components:
        hot_base = (
            instance_base(instance)
            + num_threads * (total_lines + _PRIVATE_PAD_LINES)
            + thread_id * (HOT_REGION_BYTES // 64 + _PRIVATE_PAD_LINES)
        )
        components.append(
            MixtureComponent(
                pattern=RandomPattern(
                    hot_base,
                    HOT_REGION_BYTES // 64,
                    seed=stable_seed(seed, "sharing", "hot", thread_id),
                ),
                weight=max(hot, 1e-9),
            )
        )
    return MixtureWorkload(
        f"sharing(f={shared_fraction:g},{footprint_mb:g}MB,t{thread_id})",
        components,
        mem_fraction=0.33,
        cpi_base=0.72,
        mlp=2.0,
        accesses_per_line=1.0,
        write_fraction=0.25,
        seed=stable_seed(seed, "sharing", "mix", thread_id),
    )


def sharing_regions(
    shared_fraction: float, footprint_mb: float
) -> tuple[tuple[int, int], int]:
    """(shared line range, private line count) for the given knobs.

    The statistical suite uses this to classify a generated address stream
    without duplicating the layout arithmetic.
    """
    total_lines = max(int(footprint_mb * _LINES_PER_MB), 1)
    shared_lines = int(round(total_lines * shared_fraction))
    return (
        (SHARED_REGION_BASE, SHARED_REGION_BASE + shared_lines),
        total_lines - shared_lines,
    )
