"""The Fig. 4 micro benchmarks.

The paper validates the Pirate against two hand-written kernels whose cache
behaviour is analytically obvious: one accesses a working set *randomly*
(fetch ratio falls smoothly as the cache grows past the working set), one
*sequentially* (a cyclic sweep: on LRU it thrashes — all-or-nothing — while
the Nehalem policy retains a partial working set, which is exactly the
difference Fig. 4(b) vs 4(c) demonstrates).
"""

from __future__ import annotations

from ..rng import stable_seed
from ..units import MB
from .base import Workload, instance_base
from .mixture import MixtureComponent, MixtureWorkload
from .patterns import RandomPattern, SequentialPattern

_LINES_PER_MB = MB // 64


def random_micro(
    working_set_mb: float = 4.0, *, instance: int = 0, seed: int = 0
) -> Workload:
    """Uniform random accesses over ``working_set_mb`` (Fig. 4(a))."""
    base = instance_base(instance)
    pattern = RandomPattern(
        base, int(working_set_mb * _LINES_PER_MB), seed=stable_seed(seed, "rand-micro")
    )
    return MixtureWorkload(
        f"micro.random.{working_set_mb:g}MB",
        [MixtureComponent(pattern=pattern, weight=1.0)],
        mem_fraction=0.5,
        cpi_base=0.8,
        mlp=4.0,
        accesses_per_line=1.0,
        write_fraction=0.0,
        seed=stable_seed(seed, "rand-micro-wl"),
    )


def sequential_micro(
    working_set_mb: float = 4.0, *, instance: int = 0, seed: int = 0
) -> Workload:
    """Cyclic sequential sweep over ``working_set_mb`` (Fig. 4(b)/(c)).

    No segmenting: the unbroken cyclic sweep is what exposes the difference
    between true LRU (thrash: 100% misses once the set exceeds the cache)
    and the Nehalem accessed-bit policy (partial retention).
    """
    base = instance_base(instance)
    pattern = SequentialPattern(
        base, int(working_set_mb * _LINES_PER_MB), seed=stable_seed(seed, "seq-micro")
    )
    return MixtureWorkload(
        f"micro.sequential.{working_set_mb:g}MB",
        [MixtureComponent(pattern=pattern, weight=1.0)],
        mem_fraction=0.5,
        cpi_base=0.8,
        mlp=4.0,
        accesses_per_line=1.0,
        write_fraction=0.0,
        seed=stable_seed(seed, "seq-micro-wl"),
    )
