"""Machine and cache-hierarchy configuration.

:func:`nehalem_config` reproduces Table I of the paper (quad-core Intel
Nehalem E5520): private 32K/8-way L1 and 256K/8-way L2 with tree pseudo-LRU,
and a shared, inclusive 8MB/16-way L3 with the Nehalem accessed-bit
replacement policy.  All experiments run on this geometry; unit tests build
tiny variants through the same dataclasses.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field, fields, replace

from .errors import ConfigError
from .units import GHZ, KB, LINE_SIZE, MB, bytes_per_cycle, is_pow2

#: Replacement policy identifiers accepted by :class:`CacheConfig`.
POLICIES = ("lru", "nru", "plru", "random")

#: Simulation-kernel modes accepted by :class:`MachineConfig`.
KERNEL_MODES = ("auto", "scalar", "vector", "batch")


def _default_kernel() -> str:
    """Default kernel mode; ``REPRO_KERNEL`` overrides it process-wide.

    The env hook lets harness scripts (``regen_goldens.py --kernel``, the CI
    perf-smoke job, the benchmarks) force a mode without threading a flag
    through every config construction site.
    """
    return os.environ.get("REPRO_KERNEL", "auto")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache level."""

    name: str
    size: int
    ways: int
    line_size: int = LINE_SIZE
    policy: str = "lru"
    #: Inclusive caches back-invalidate lower levels on eviction (Nehalem L3).
    inclusive: bool = False
    shared: bool = False
    write_allocate: bool = True
    write_back: bool = True

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ConfigError(f"unknown replacement policy {self.policy!r}")
        if self.ways <= 0:
            raise ConfigError(f"{self.name}: ways must be positive")
        if not is_pow2(self.line_size):
            raise ConfigError(f"{self.name}: line size must be a power of two")
        if self.size % (self.ways * self.line_size) != 0:
            raise ConfigError(
                f"{self.name}: size {self.size} is not a multiple of "
                f"ways*line_size = {self.ways * self.line_size}"
            )
        if not is_pow2(self.num_sets):
            raise ConfigError(
                f"{self.name}: derived set count {self.num_sets} must be a power of two"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets implied by size, associativity and line size."""
        return self.size // (self.ways * self.line_size)

    @property
    def num_lines(self) -> int:
        """Total line capacity of the cache."""
        return self.size // self.line_size

    def with_ways(self, ways: int) -> "CacheConfig":
        """Same sets/line size, different associativity (way-stealing sweeps)."""
        return replace(self, ways=ways, size=self.num_sets * ways * self.line_size)

    def with_size_same_assoc(self, size: int) -> "CacheConfig":
        """Same associativity, different size (set-reduction sweeps)."""
        return replace(self, size=size)


@dataclass(frozen=True)
class CoreConfig:
    """Timing parameters of one (in-order, superscalar-abstracted) core.

    The model is interval-style: a quantum of ``n`` instructions costs
    ``n * cpi_base`` cycles plus stall cycles for each miss class, with
    memory-level parallelism overlapping L3/DRAM latencies.
    """

    clock_hz: float = 2.26 * GHZ
    l2_hit_latency: float = 10.0
    l3_hit_latency: float = 38.0
    dram_latency: float = 190.0
    #: Peak L3 bandwidth one core can draw (bytes/cycle); two Pirate threads
    #: at this rate give the paper's 56 GB/s two-core figure.
    l3_port_bytes_per_cycle: float = 12.4


@dataclass(frozen=True)
class MachineConfig:
    """Full machine: cores, hierarchy, bandwidth caps, prefetcher switch."""

    num_cores: int = 4
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1", 32 * KB, 8, policy="plru")
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 256 * KB, 8, policy="plru")
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            "L3", 8 * MB, 16, policy="nru", inclusive=True, shared=True
        )
    )
    #: Off-chip (DRAM) bandwidth cap in GB/s; the paper's system sustains 10.4.
    dram_bandwidth_gbps: float = 10.4
    #: Aggregate shared-L3 bandwidth cap in GB/s (68 on the paper's system).
    l3_bandwidth_gbps: float = 68.0
    prefetch_enabled: bool = True
    #: When True (default) the hierarchy assumes threads do not share cache
    #: lines, so inclusive-L3 back-invalidation only needs to visit the core
    #: that fetched the line.  Every workload in this library uses disjoint
    #: per-thread address spaces; set False to force all-core invalidation.
    private_data: bool = True
    #: Stream prefetcher: launch after this many consecutive +1-line strides.
    prefetch_trigger: int = 2
    #: Prefetch depth (lines fetched ahead of a detected stream).
    prefetch_degree: int = 4
    #: Simulation-kernel selection: ``auto`` picks the vectorized numpy
    #: kernels (:mod:`repro.kernels`) per chunk when they are profitable,
    #: ``vector`` forces them wherever they apply, ``scalar`` keeps the
    #: interpreter loops, and ``batch`` is ``vector`` plus the opt-in C
    #: lowering of the sequential L3 paths (:mod:`repro.kernels.cext`;
    #: pure-Python fallback when no compiler is available) and batched
    #: sweep execution (:mod:`repro.kernels.batchkernel`,
    #: single-job collapse in :func:`repro.core.parallel.run_sweep`).
    #: All modes are bit-identical; ``REPRO_KERNEL`` overrides the
    #: default process-wide.
    kernel: str = field(default_factory=_default_kernel)
    #: Shared-L3 set sampling: simulate every Nth L3 set and rescale the L3
    #: counter deltas by N (1 = exact).  A statistical speed/accuracy trade
    #: validated by ``repro validate``; must be a power of two not exceeding
    #: the L3 set count.
    sample_sets: int = 1

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigError("machine needs at least one core")
        line = self.l1.line_size
        if not (line == self.l2.line_size == self.l3.line_size):
            raise ConfigError("all cache levels must share one line size")
        if self.dram_bandwidth_gbps <= 0 or self.l3_bandwidth_gbps <= 0:
            raise ConfigError("bandwidth caps must be positive")
        if self.kernel not in KERNEL_MODES:
            raise ConfigError(
                f"unknown kernel mode {self.kernel!r}; choose one of {KERNEL_MODES}"
            )
        if self.sample_sets < 1 or not is_pow2(self.sample_sets):
            raise ConfigError(
                f"sample_sets must be a positive power of two, got {self.sample_sets}"
            )
        if self.sample_sets > self.l3.num_sets:
            raise ConfigError(
                f"sample_sets {self.sample_sets} exceeds the L3's "
                f"{self.l3.num_sets} sets"
            )

    @property
    def line_size(self) -> int:
        return self.l1.line_size

    @property
    def dram_bytes_per_cycle(self) -> float:
        """Off-chip bandwidth cap expressed in bytes per core-clock cycle."""
        return bytes_per_cycle(self.dram_bandwidth_gbps, self.core.clock_hz)

    @property
    def l3_bytes_per_cycle(self) -> float:
        """Shared L3 bandwidth cap in bytes per cycle."""
        return bytes_per_cycle(self.l3_bandwidth_gbps, self.core.clock_hz)


def nehalem_config(
    *,
    prefetch_enabled: bool = True,
    num_cores: int = 4,
    kernel: str | None = None,
    sample_sets: int = 1,
) -> MachineConfig:
    """The paper's evaluation machine (Table I + §III-A bandwidth figures)."""
    kwargs = {} if kernel is None else {"kernel": kernel}
    return MachineConfig(
        num_cores=num_cores,
        prefetch_enabled=prefetch_enabled,
        sample_sets=sample_sets,
        **kwargs,
    )


def tiny_config(
    *,
    l3_size: int = 8 * KB,
    l3_ways: int = 4,
    policy: str = "lru",
    num_cores: int = 2,
    prefetch_enabled: bool = False,
    kernel: str | None = None,
    sample_sets: int = 1,
) -> MachineConfig:
    """A miniature machine for unit tests (same code paths, tiny state)."""
    kwargs = {} if kernel is None else {"kernel": kernel}
    return MachineConfig(
        num_cores=num_cores,
        l1=CacheConfig("L1", 1 * KB, 2, policy="plru"),
        l2=CacheConfig("L2", 2 * KB, 4, policy="plru"),
        l3=CacheConfig("L3", l3_size, l3_ways, policy=policy, inclusive=True, shared=True),
        prefetch_enabled=prefetch_enabled,
        sample_sets=sample_sets,
        **kwargs,
    )


def machine_content_token(config: MachineConfig) -> dict:
    """Canonical machine description for content keys (caches, journals).

    The ``kernel`` field is execution strategy, not experiment content —
    scalar, vectorized and batched/C engines are bit-identical
    (``tests/test_kernels``, ``tests/test_batchkernel``) — so it is
    excluded: a sweep cached or journaled under ``REPRO_KERNEL=vector``
    (or ``batch``) is the same sweep under ``scalar``, and a journal
    written by one can be resumed by any other.  ``sample_sets`` *does*
    change results and stays in.
    """
    token = asdict(config)
    token.pop("kernel", None)
    return token


def machine_to_dict(config: MachineConfig) -> dict:
    """The full machine as pure-JSON data (the service wire format).

    Unlike :func:`machine_content_token` this keeps every field — it
    describes a machine to *construct*, not to key — and round-trips
    exactly through :func:`machine_from_dict`.
    """
    return asdict(config)


def machine_from_dict(data: dict) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from :func:`machine_to_dict` output.

    Raises :class:`~repro.errors.ConfigError` on structural junk as well as
    on semantic junk (the dataclass validators run as usual), so a garbled
    wire payload is one clean error instead of a deep TypeError.
    """
    if not isinstance(data, dict):
        raise ConfigError(f"machine must be a mapping, got {type(data).__name__}")
    known = {f.name for f in fields(MachineConfig)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ConfigError(f"machine: unknown field(s) {', '.join(map(repr, unknown))}")
    kwargs = dict(data)
    try:
        if "core" in kwargs:
            kwargs["core"] = CoreConfig(**kwargs["core"])
        for level in ("l1", "l2", "l3"):
            if level in kwargs:
                kwargs[level] = CacheConfig(**kwargs[level])
        return MachineConfig(**kwargs)
    except ConfigError:
        raise
    except (TypeError, ValueError) as e:
        raise ConfigError(f"machine: {e}") from None
