"""The Gprof stand-in: a flat profile for placing trace markers.

§III-B1: "we analyze the time profiles of the applications using Gprof and
identify the code responsible for the largest fraction of the applications'
execution times.  We then configure our simulator to start tracing when the
applications enter their hot code segments."

A simulated workload's analogue of "code regions" is its phase/region
structure: for a :class:`~repro.workloads.phased.PhasedWorkload` the phases
are the profile units; for a plain workload there is a single unit covering
the whole run.  The profiler runs the workload on a machine for a sampling
budget and attributes cycles to units, then reports the hot unit and the
instruction markers that bracket its first occurrence — exactly what the
tracer needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import MachineConfig, nehalem_config
from ..errors import TraceError
from ..hardware.machine import Machine
from ..workloads.phased import PhasedWorkload


@dataclass
class ProfileEntry:
    """One profile unit (phase) with its measured share of execution time."""

    name: str
    cycles: float
    instructions: float
    #: instruction markers bracketing the unit's first occurrence
    start_marker: float
    stop_marker: float

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


@dataclass
class FlatProfile:
    """A Gprof-style flat profile of a workload."""

    benchmark: str
    entries: list[ProfileEntry] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return sum(e.cycles for e in self.entries)

    def hottest(self) -> ProfileEntry:
        """The unit with the largest share of execution time."""
        if not self.entries:
            raise TraceError(f"{self.benchmark}: empty profile")
        return max(self.entries, key=lambda e: e.cycles)

    def fraction(self, name: str) -> float:
        """Share of total cycles attributed to ``name``."""
        total = self.total_cycles
        for e in self.entries:
            if e.name == name:
                return e.cycles / total if total else 0.0
        raise TraceError(f"{self.benchmark}: no profile unit {name!r}")


def profile_workload(
    workload_factory,
    sample_instructions: float,
    *,
    config: MachineConfig | None = None,
    seed: int = 0,
) -> FlatProfile:
    """Profile a workload for ``sample_instructions`` on a solo machine.

    For phased workloads, cycles are attributed per phase by sampling the
    phase index at quantum granularity; plain workloads yield a single
    entry.  Returns markers usable with the tracer and the attach API.
    """
    config = config or nehalem_config(num_cores=1)
    machine = Machine(config, seed=seed)
    if callable(workload_factory):
        workload = workload_factory()
    else:
        workload = workload_factory
        workload.reset()
    thread = machine.add_thread(workload, core=0, instruction_limit=sample_instructions)

    if not isinstance(workload, PhasedWorkload):
        machine.run()
        s = machine.counters.sample(0)
        return FlatProfile(
            benchmark=workload.name,
            entries=[
                ProfileEntry(
                    name=workload.name,
                    cycles=s.cycles,
                    instructions=s.instructions,
                    start_marker=0.0,
                    stop_marker=s.instructions,
                )
            ],
        )

    n_phases = len(workload.phases)
    cycles = [0.0] * n_phases
    instructions = [0.0] * n_phases
    first_start = [None] * n_phases
    first_stop = [None] * n_phases
    while not thread.finished:
        phase = workload.current_phase
        c0 = machine.counters.sample(0)
        i0 = thread.instructions
        machine.run(max_quanta=1)
        d = machine.counters.sample(0).delta(c0)
        cycles[phase] += d.cycles
        instructions[phase] += d.instructions
        if first_start[phase] is None:
            first_start[phase] = i0
        if workload.current_phase == phase:
            first_stop[phase] = thread.instructions
        elif first_stop[phase] is None:
            first_stop[phase] = thread.instructions

    entries = []
    for i, (sub, _) in enumerate(workload.phases):
        if instructions[i] <= 0:
            continue
        entries.append(
            ProfileEntry(
                name=sub.name,
                cycles=cycles[i],
                instructions=instructions[i],
                start_marker=float(first_start[i] or 0.0),
                stop_marker=float(first_stop[i] or 0.0),
            )
        )
    return FlatProfile(benchmark=workload.name, entries=entries)
