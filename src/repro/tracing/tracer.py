"""The Pin stand-in: capture address traces between instruction markers.

The paper instruments binaries with Pin to record the memory references of
the hot code region (about one billion accesses), starting and stopping at
specific instruction addresses.  On the simulated side, a workload *is* its
memory reference stream, so tracing means: advance the workload to the start
marker (discarding output), then record until the stop marker.

The same marker values are handed to :func:`repro.core.attach.
measure_between_markers` so the Pirate measures exactly the traced window.
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError
from ..hardware.thread import WorkloadLike
from .trace import AddressTrace

#: chunk granularity for fast-forward/capture (lines)
_CHUNK = 65_536


def _lines_for_instructions(workload: WorkloadLike, instructions: float) -> int:
    return int(instructions * workload.mem_fraction / workload.accesses_per_line)


def capture_trace(
    workload: WorkloadLike,
    start_marker: float,
    stop_marker: float,
    *,
    benchmark: str | None = None,
    keep_writes: bool = True,
) -> AddressTrace:
    """Record ``workload``'s references between two instruction markers.

    The workload is consumed from its current state (callers normally pass a
    freshly built instance); references before ``start_marker`` are generated
    and discarded, mirroring how Pin fast-forwards to the hot region.
    """
    if not 0 <= start_marker < stop_marker:
        raise TraceError("markers must satisfy 0 <= start < stop")
    skip = _lines_for_instructions(workload, start_marker)
    keep = _lines_for_instructions(workload, stop_marker - start_marker)
    if keep <= 0:
        raise TraceError("marker window contains no memory references")

    remaining = skip
    while remaining > 0:
        n = min(remaining, _CHUNK)
        workload.chunk(n)
        remaining -= n

    pieces: list[np.ndarray] = []
    write_pieces: list[np.ndarray] = []
    remaining = keep
    while remaining > 0:
        n = min(remaining, _CHUNK)
        lines, writes = workload.chunk(n)
        pieces.append(np.asarray(lines, dtype=np.int64))
        if keep_writes and writes is not None:
            write_pieces.append(np.asarray(writes, dtype=bool))
        remaining -= n

    lines = np.concatenate(pieces)
    writes = np.concatenate(write_pieces) if write_pieces else None
    if writes is not None and writes.shape != lines.shape:
        raise TraceError("workload produced inconsistent write masks")
    return AddressTrace(
        benchmark=benchmark or workload.name,
        lines=lines,
        writes=writes,
        start_marker=start_marker,
        stop_marker=stop_marker,
        accesses_per_line=workload.accesses_per_line,
        meta={"mem_fraction": workload.mem_fraction},
    )
