"""Compact address-trace container.

A trace is the unit of exchange between the tracer (Pin stand-in) and the
reference cache simulator: line addresses, an optional write mask, and the
instruction markers it was captured between, so Pirate measurements can be
aligned to the exact same window (§III-B1: "we make sure to attach and
detach the Pirate at the exact same instructions at which we started and
stopped tracing").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import TraceError


@dataclass
class AddressTrace:
    """A captured sequence of line-granularity memory references."""

    benchmark: str
    #: line addresses in access order
    lines: np.ndarray
    #: optional parallel write mask
    writes: np.ndarray | None = None
    #: Target instruction count at capture start/stop (the markers)
    start_marker: float = 0.0
    stop_marker: float = 0.0
    #: architectural accesses each line stands for (workload's value)
    accesses_per_line: float = 1.0
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.lines = np.asarray(self.lines, dtype=np.int64)
        if self.lines.ndim != 1 or len(self.lines) == 0:
            raise TraceError(f"{self.benchmark}: empty or non-1D trace")
        if self.writes is not None:
            self.writes = np.asarray(self.writes, dtype=bool)
            if self.writes.shape != self.lines.shape:
                raise TraceError(f"{self.benchmark}: write mask shape mismatch")

    def __len__(self) -> int:
        return len(self.lines)

    @property
    def mem_accesses(self) -> float:
        """Architectural accesses represented (the fetch-ratio denominator)."""
        return len(self.lines) * self.accesses_per_line

    def footprint_lines(self) -> int:
        """Distinct lines touched."""
        return int(np.unique(self.lines).size)

    def slice(self, start: int, stop: int) -> "AddressTrace":
        """Sub-trace of access indices ``[start, stop)``."""
        if not 0 <= start < stop <= len(self.lines):
            raise TraceError(f"bad slice [{start}, {stop}) of {len(self.lines)}")
        return AddressTrace(
            benchmark=self.benchmark,
            lines=self.lines[start:stop],
            writes=None if self.writes is None else self.writes[start:stop],
            start_marker=self.start_marker,
            stop_marker=self.stop_marker,
            accesses_per_line=self.accesses_per_line,
            meta=dict(self.meta),
        )

    def save(self, path: str | Path) -> None:
        """Persist the trace as a compressed ``.npz`` archive.

        Captured traces are the expensive artifact of the §III-B workflow
        (the paper's are ~1 billion references); saving them lets reference
        sweeps be re-run without re-tracing.
        """
        meta = {
            "benchmark": self.benchmark,
            "start_marker": self.start_marker,
            "stop_marker": self.stop_marker,
            "accesses_per_line": self.accesses_per_line,
            "meta": self.meta,
        }
        arrays = {"lines": self.lines, "meta_json": np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8)}
        if self.writes is not None:
            arrays["writes"] = self.writes
        np.savez_compressed(Path(path), **arrays)

    @classmethod
    def load(cls, path: str | Path) -> "AddressTrace":
        """Load a trace saved by :meth:`save`."""
        with np.load(Path(path)) as data:
            meta = json.loads(bytes(data["meta_json"]).decode())
            writes = data["writes"] if "writes" in data.files else None
            return cls(
                benchmark=meta["benchmark"],
                lines=data["lines"],
                writes=writes,
                start_marker=meta["start_marker"],
                stop_marker=meta["stop_marker"],
                accesses_per_line=meta["accesses_per_line"],
                meta=meta["meta"],
            )

    def concat(self, other: "AddressTrace") -> "AddressTrace":
        """Concatenate two traces of the same benchmark."""
        if other.benchmark != self.benchmark:
            raise TraceError("cannot concatenate traces of different benchmarks")
        if (self.writes is None) != (other.writes is None):
            raise TraceError("cannot concatenate traces with mismatched write masks")
        return AddressTrace(
            benchmark=self.benchmark,
            lines=np.concatenate([self.lines, other.lines]),
            writes=None
            if self.writes is None
            else np.concatenate([self.writes, other.writes]),
            start_marker=self.start_marker,
            stop_marker=other.stop_marker,
            accesses_per_line=self.accesses_per_line,
            meta=dict(self.meta),
        )
