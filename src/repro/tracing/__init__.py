"""Trace capture and profiling stand-ins (§III-B1 methodology).

The paper generates reference fetch-ratio curves by capturing address traces
with Pin at hot-code markers found with Gprof, then replaying them through a
cache simulator.  This package provides the same workflow for the simulated
machine: :mod:`repro.tracing.trace` holds compact address traces,
:mod:`repro.tracing.tracer` captures them from a workload between
instruction markers, and :mod:`repro.tracing.profiler` produces the flat
time profile used to place those markers on hot phases.
"""

from .trace import AddressTrace
from .tracer import capture_trace
from .profiler import FlatProfile, profile_workload

__all__ = ["AddressTrace", "capture_trace", "FlatProfile", "profile_workload"]
